//! Adaptive estimation runs: plan → execute → **observe** per query, so
//! the feedback store accumulates executed true cardinalities while the
//! workload streams, and accuracy can be reported *as a function of
//! queries seen*. Includes the drift experiment: a `temporal_split` data
//! shift invalidates the accumulated feedback, and a further replay
//! shows the store re-converging (paper ROADMAP open item 2; the
//! adaptive loop of arXiv:1711.08330).

use std::sync::{Arc, OnceLock};

use cardbench_datagen::stats::{temporal_split, SPLIT_DAY};
use cardbench_datagen::{stats_catalog, StatsConfig};
use cardbench_engine::{CostModel, Database, ExecScratch, TrueCardService};
use cardbench_estimators::lw::TrainingSet;
use cardbench_estimators::postgres::PostgresEst;
use cardbench_estimators::{CardEst, EstimatorKind};
use cardbench_feedback::{FeedbackConfig, FeedbackEst, FeedbackStats, FeedbackStore};
use cardbench_query::{BoundQuery, SubPlanQuery};
use cardbench_storage::TableId;
use cardbench_workload::Workload;

use crate::config::EstimatorSettings;
use crate::endtoend::{estimate_all, execute_one, plan_query_via, QueryRun};
use crate::factory::{build_estimator, BuiltEstimator};
use crate::fault::RunOptions;

/// Runs one workload strictly sequentially — plan, execute, then feed
/// the executed sub-plan truths back into `store` — so query `i+1` is
/// planned with everything learned from queries `0..=i`. The returned
/// runs are in workload order: their Q-Errors/P-Errors *are* the
/// learning curve.
///
/// `est` is typically a [`FeedbackEst`] sharing `store`; passing the
/// bare inner estimator measures the same workload without feedback
/// resolution (observations are still recorded). Parallel planning is
/// deliberately not used here: the feedback loop is order-dependent by
/// design, unlike [`crate::endtoend::run_workload`].
pub fn run_workload_adaptive(
    db: &Database,
    wl: &Workload,
    est: &dyn CardEst,
    store: &FeedbackStore,
    truth: &TrueCardService,
    cost: &CostModel,
    opts: &RunOptions,
) -> Vec<QueryRun> {
    let _sp = cardbench_obs::span_with("workload", "run", || {
        format!("{} / {} (adaptive)", wl.name, est.name())
    });
    let before = store.stats();
    let fallback: OnceLock<PostgresEst> = OnceLock::new();
    let mut scratch = ExecScratch::new();
    let mut runs = Vec::with_capacity(wl.queries.len());
    for wq in &wl.queries {
        let planned = plan_query_via(
            db,
            wq,
            &|subs| estimate_all(est, db, subs, opts.timeout),
            truth,
            cost,
            &fallback,
        );
        let run = execute_one(db, planned, opts, &mut scratch);
        if run.completed() {
            let _fb = cardbench_obs::span_with("feedback", "adaptive", || format!("Q{}", run.id));
            // Re-project the sub-plan space (the topology is cached) so
            // each dense slot i of the recorded cards aligns with its
            // sub-query, then record (estimate seen, truth) per slot.
            if let Ok(bound) = BoundQuery::bind(&wq.query, db.catalog()) {
                let topo = db.topology(&wq.query, &bound);
                let subs: Vec<SubPlanQuery> = topo
                    .masks()
                    .iter()
                    .map(|&mask| SubPlanQuery::project(&wq.query, mask))
                    .collect();
                store.observe_subplans(&subs, &run.sub_est_cards, &run.sub_true_cards);
            }
        }
        runs.push(run);
    }
    record_feedback_metrics(est.name(), &before, &store.stats());
    runs
}

/// Folds this run's feedback-store traffic into the observability
/// registry as before/after deltas (the store is shared across runs and
/// sessions, so absolutes would double-count).
pub fn record_feedback_metrics(method: &str, before: &FeedbackStats, after: &FeedbackStats) {
    use cardbench_obs::counter_add;
    if !cardbench_obs::enabled() {
        return;
    }
    let m = [("method", method)];
    for (family, b, a) in [
        ("cardbench_feedback_hits_total", before.hits, after.hits),
        (
            "cardbench_feedback_misses_total",
            before.misses,
            after.misses,
        ),
        (
            "cardbench_feedback_overrides_total",
            before.overrides,
            after.overrides,
        ),
        (
            "cardbench_feedback_corrections_total",
            before.corrections,
            after.corrections,
        ),
        (
            "cardbench_feedback_observations_total",
            before.observations,
            after.observations,
        ),
        (
            "cardbench_feedback_rejected_total",
            before.rejected,
            after.rejected,
        ),
    ] {
        counter_add(family, &m, a.saturating_sub(b));
    }
}

/// The four phases of the adaptive drift experiment, each a full
/// sequential pass over the workload sharing one feedback store.
#[derive(Debug)]
pub struct AdaptiveExperiment {
    /// The wrapped inner estimator kind.
    pub kind: EstimatorKind,
    /// Pass 1 on pre-cutoff data, cold store: feedback warms up within
    /// the pass (late queries benefit from early ones).
    pub warmup: Vec<QueryRun>,
    /// Pass 2, same data, warm store: exact overrides dominate.
    pub replay: Vec<QueryRun>,
    /// Pass 3 after the temporal bulk insert, stale store: overrides now
    /// carry pre-shift truths, so errors spike — and every execution
    /// refreshes its entries.
    pub post_shift: Vec<QueryRun>,
    /// Pass 4, shifted data, refreshed store: recovery.
    pub recovered: Vec<QueryRun>,
    /// Final cumulative store counters.
    pub stats: FeedbackStats,
}

/// Runs the drift experiment for one inner estimator kind: train on the
/// pre-cutoff half of STATS ([`temporal_split`], as in the Table 6
/// update experiment), stream the workload twice, bulk-insert the
/// post-cutoff rows, and stream it twice more. The inner model is *not*
/// updated at the shift — recovery is carried entirely by re-observed
/// feedback.
#[allow(clippy::too_many_arguments)] // one knob per experimental axis
pub fn run_adaptive_experiment(
    stats_cfg: &StatsConfig,
    wl: &Workload,
    inner: EstimatorKind,
    train: &TrainingSet,
    settings: &EstimatorSettings,
    cost: &CostModel,
    fb_cfg: FeedbackConfig,
    opts: &RunOptions,
) -> AdaptiveExperiment {
    let full = stats_catalog(stats_cfg);
    let (stale_catalog, inserts) = temporal_split(&full, SPLIT_DAY);
    let stale_db = Database::new(stale_catalog);

    let store = Arc::new(FeedbackStore::new(fb_cfg));
    let BuiltEstimator { est, .. } = build_estimator(inner, &stale_db, train, settings);
    let wrapped = FeedbackEst::new(est, Arc::clone(&store), true);

    let truth = TrueCardService::new();
    let warmup = run_workload_adaptive(&stale_db, wl, &wrapped, &store, &truth, cost, opts);
    let replay = run_workload_adaptive(&stale_db, wl, &wrapped, &store, &truth, cost, opts);

    // The temporal shift: append the post-cutoff rows and rebuild the
    // derived state. The true-cardinality cache keys on query identity,
    // not data, so a *fresh* service is mandatory after the shift.
    let mut shifted_db = stale_db;
    for (t, d) in inserts.iter().enumerate() {
        shifted_db
            .catalog_mut()
            .table_mut(TableId(t))
            .append_rows(d)
            .expect("temporal split halves share schemas");
    }
    shifted_db.refresh();
    let truth2 = TrueCardService::new();
    let post_shift = run_workload_adaptive(&shifted_db, wl, &wrapped, &store, &truth2, cost, opts);
    let recovered = run_workload_adaptive(&shifted_db, wl, &wrapped, &store, &truth2, cost, opts);

    AdaptiveExperiment {
        kind: inner,
        warmup,
        replay,
        post_shift,
        recovered,
        stats: store.stats(),
    }
}

/// Median valid sub-plan Q-Error of a pass (NaN when nothing is valid).
pub fn median_q_error(runs: &[QueryRun]) -> f64 {
    let all: Vec<f64> = runs.iter().flat_map(|q| q.q_errors.clone()).collect();
    cardbench_metrics::percentile(&all, 0.5)
}

/// Median P-Error over completed queries of a pass.
pub fn median_p_error(runs: &[QueryRun]) -> f64 {
    let all: Vec<f64> = runs
        .iter()
        .filter(|q| q.completed())
        .map(|q| q.p_error)
        .collect();
    cardbench_metrics::percentile(&all, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Bench, BenchConfig};
    use crate::endtoend::run_workload;

    #[test]
    fn replay_with_warm_store_reaches_oracle_accuracy() {
        let b = Bench::build(BenchConfig::fast(7));
        let store = Arc::new(FeedbackStore::new(FeedbackConfig::default()));
        let built = build_estimator(
            EstimatorKind::Postgres,
            &b.stats_db,
            &b.stats_train,
            &b.config.settings,
        );
        let wrapped = FeedbackEst::new(built.est, Arc::clone(&store), true);
        let truth = TrueCardService::new();
        let cost = CostModel::default();
        let opts = RunOptions::default();
        let first = run_workload_adaptive(
            &b.stats_db,
            &b.stats_wl,
            &wrapped,
            &store,
            &truth,
            &cost,
            &opts,
        );
        let second = run_workload_adaptive(
            &b.stats_db,
            &b.stats_wl,
            &wrapped,
            &store,
            &truth,
            &cost,
            &opts,
        );
        // Second pass: every sub-plan was observed, so estimates are the
        // observed truths — oracle Q-Error and P-Error.
        for run in &second {
            assert!(run.completed());
            for &qe in &run.q_errors {
                assert!((qe - 1.0).abs() < 1e-9, "Q{} qe {qe}", run.id);
            }
            assert!(
                (run.p_error - 1.0).abs() < 1e-9,
                "Q{} pe {}",
                run.id,
                run.p_error
            );
        }
        // And no worse than the cold first pass in aggregate.
        assert!(median_q_error(&second) <= median_q_error(&first) + 1e-9);
        let st = store.stats();
        assert!(st.observations > 0 && st.overrides > 0);
    }

    #[test]
    fn adaptive_run_without_feedback_matches_parallel_harness() {
        // The sequential adaptive loop with a disabled wrapper must be
        // bit-identical (non-timing fields) to the parallel harness.
        let b = Bench::build(BenchConfig::fast(9));
        let store = Arc::new(FeedbackStore::default());
        let built = build_estimator(
            EstimatorKind::Postgres,
            &b.stats_db,
            &b.stats_train,
            &b.config.settings,
        );
        let wrapped = FeedbackEst::new(built.est, Arc::clone(&store), false);
        let truth = TrueCardService::new();
        let cost = CostModel::default();
        let adaptive = run_workload_adaptive(
            &b.stats_db,
            &b.stats_wl,
            &wrapped,
            &store,
            &truth,
            &cost,
            &RunOptions::default(),
        );
        let baseline = run_workload(&b.stats_db, &b.stats_wl, wrapped.inner(), &truth, &cost);
        assert_eq!(adaptive.len(), baseline.len());
        for (a, r) in adaptive.iter().zip(&baseline) {
            assert_eq!(a.id, r.id);
            assert_eq!(
                a.sub_est_cards
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                r.sub_est_cards
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>()
            );
            assert_eq!(a.p_error.to_bits(), r.p_error.to_bits());
            assert_eq!(a.result_rows, r.result_rows);
        }
        // Disabled wrapper still *observes* nothing — the store stayed
        // untouched because observation is the runner's job and the
        // disabled flag only gates resolution; but resolution counters
        // must be zero.
        assert_eq!(store.stats().hits, 0);
    }

    #[test]
    fn drift_experiment_spikes_then_recovers() {
        let stats_cfg = StatsConfig::tiny(5);
        let db = Database::new(stats_catalog(&stats_cfg));
        let wl = cardbench_workload::stats_ceb(
            &db,
            &cardbench_workload::WorkloadConfig {
                templates: 6,
                queries: 8,
                max_tables: 3,
                ..cardbench_workload::WorkloadConfig::stats_ceb(5)
            },
        );
        let settings = EstimatorSettings::fast(5);
        let exp = run_adaptive_experiment(
            &stats_cfg,
            &wl,
            EstimatorKind::Postgres,
            &TrainingSet::default(),
            &settings,
            &CostModel::default(),
            FeedbackConfig::default(),
            &RunOptions::default(),
        );
        // Warm replay on unchanged data is oracle-accurate.
        let q_replay = median_q_error(&exp.replay);
        assert!((q_replay - 1.0).abs() < 1e-9, "replay median {q_replay}");
        // After the shift the stale overrides err; after re-observation
        // the second shifted pass is oracle-accurate again.
        let q_recovered = median_q_error(&exp.recovered);
        assert!(
            (q_recovered - 1.0).abs() < 1e-9,
            "recovered median {q_recovered}"
        );
        assert!(exp.stats.observations > 0);
    }
}
