//! Estimator construction by kind, with training-time measurement.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cardbench_engine::Database;
use cardbench_estimators::bayescard::BayesCard;
use cardbench_estimators::deepdb::DeepDb;
use cardbench_estimators::flat::Flat;
use cardbench_estimators::lw::{LwNn, LwXgb, TrainingSet};
use cardbench_estimators::mscn::Mscn;
use cardbench_estimators::multihist::{MultiHist, MultiHistConfig};
use cardbench_estimators::neurocard::NeuroCardE;
use cardbench_estimators::pessest::PessEst;
use cardbench_estimators::postgres::PostgresEst;
use cardbench_estimators::truecard::TrueCardEst;
use cardbench_estimators::uae::{Uae, UaeQ};
use cardbench_estimators::unisample::UniSample;
use cardbench_estimators::wjsample::WjSample;
use cardbench_estimators::{CardEst, EstimatorKind};
use cardbench_feedback::{FeedbackEst, FeedbackStore};
use cardbench_sketch::SketchEst;

use crate::config::EstimatorSettings;

/// A constructed estimator with its build cost.
pub struct BuiltEstimator {
    /// The estimator.
    pub est: Box<dyn CardEst>,
    /// Wall-clock training time.
    pub train_time: Duration,
    /// Model size after training.
    pub model_size: usize,
}

/// Builds the estimator of `kind`, timing its training. Query-driven
/// kinds consume `train`.
pub fn build_estimator(
    kind: EstimatorKind,
    db: &Database,
    train: &TrainingSet,
    s: &EstimatorSettings,
) -> BuiltEstimator {
    let t0 = Instant::now();
    let est: Box<dyn CardEst> = match kind {
        EstimatorKind::TrueCard => Box::new(TrueCardEst::new()),
        EstimatorKind::Postgres => Box::new(PostgresEst::fit(db)),
        EstimatorKind::MultiHist => Box::new(MultiHist::fit(db, &MultiHistConfig::default())),
        EstimatorKind::UniSample => Box::new(UniSample::fit(db, s.sample_size, s.seed)),
        EstimatorKind::WjSample => Box::new(WjSample::new(s.wj_walks, s.seed)),
        EstimatorKind::PessEst => Box::new(PessEst::fit(db)),
        EstimatorKind::Mscn => Box::new(Mscn::fit(db, train, &s.mscn)),
        EstimatorKind::LwXgb => Box::new(LwXgb::fit(db, train, &s.gbdt)),
        EstimatorKind::LwNn => Box::new(LwNn::fit(db, train, &s.lw_nn)),
        EstimatorKind::UaeQ => Box::new(UaeQ::fit(db, train, &s.uae)),
        EstimatorKind::NeuroCardE => Box::new(NeuroCardE::fit(db, &s.neurocard)),
        EstimatorKind::BayesCard => Box::new(BayesCard::fit(db, s.max_bins)),
        EstimatorKind::DeepDb => Box::new(DeepDb::fit(db, s.max_bins, s.seed)),
        EstimatorKind::Flat => Box::new(Flat::fit(db, s.max_bins, s.seed)),
        EstimatorKind::Uae => Box::new(Uae::fit(db, train, &s.uae)),
        // Sharded mergeable build: shard count from `s.sketch.shards`
        // (0 = the `--threads`/env auto-resolution), bit-identical to a
        // sequential scan for any value.
        EstimatorKind::Sketch => Box::new(SketchEst::fit(db, &s.sketch)),
        // Bare `Feedback` wraps the PostgreSQL baseline with a fresh
        // store; use [`build_feedback_estimator`] to pick the inner kind
        // and share a store across runs/sessions.
        EstimatorKind::Feedback => Box::new(FeedbackEst::new(
            Box::new(PostgresEst::fit(db)),
            Arc::new(FeedbackStore::default()),
            true,
        )),
    };
    let train_time = t0.elapsed();
    let model_size = est.model_size_bytes();
    BuiltEstimator {
        est,
        train_time,
        model_size,
    }
}

/// Builds the estimator of `inner` and wraps it in a [`FeedbackEst`]
/// sharing `store`. Training time and model size are the inner
/// estimator's (the wrapper adds none of either); the reported kind is
/// [`EstimatorKind::Feedback`] from the wrapper's perspective, but
/// callers typically keep reporting under `inner` since the wrapper is
/// transparent until observations accumulate.
pub fn build_feedback_estimator(
    inner: EstimatorKind,
    db: &Database,
    train: &TrainingSet,
    s: &EstimatorSettings,
    store: Arc<FeedbackStore>,
    enabled: bool,
) -> BuiltEstimator {
    let built = build_estimator(inner, db, train, s);
    BuiltEstimator {
        est: Box::new(FeedbackEst::new(built.est, store, enabled)),
        train_time: built.train_time,
        model_size: built.model_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Bench, BenchConfig};

    #[test]
    fn every_kind_builds_and_estimates() {
        let b = Bench::build(BenchConfig::fast(11));
        let s = &b.config.settings;
        for kind in EstimatorKind::ALL {
            let built = build_estimator(kind, &b.stats_db, &b.stats_train, s);
            assert_eq!(built.est.name(), kind.name());
            // Estimate the first workload query end-to-end.
            let wq = &b.stats_wl.queries[0];
            let sub = cardbench_query::SubPlanQuery {
                mask: cardbench_query::TableMask::full(wq.query.table_count()),
                query: wq.query.clone(),
            };
            let e = built.est.estimate(&b.stats_db, &sub);
            assert!(e.is_finite() && e >= 0.0, "{}: estimate {e}", kind.name());
        }
    }
}
