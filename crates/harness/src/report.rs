//! Text renderers for the paper's tables and figures.
//!
//! Every renderer accepts *partial* runs: a missing method renders as
//! `—`, a query that produced no executed result renders as
//! `failed(<reason>)` in the fault summary, and a result set without the
//! PostgreSQL baseline degrades to a note instead of panicking. Writes
//! go to an in-memory `String` (infallible), so their results are
//! deliberately discarded.

use std::fmt::Write as _;
use std::time::Duration;

use cardbench_datagen::DatasetProfile;
use cardbench_engine::Database;
use cardbench_estimators::EstimatorKind;
use cardbench_metrics::{pearson, percentile_triple};
use cardbench_workload::Workload;

use crate::endtoend::MethodRun;

/// Human-friendly duration (µs/ms/s).
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

/// Human-friendly byte count.
pub fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.1}MB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

/// Scientific-ish formatting for cardinalities.
pub fn fmt_card(v: f64) -> String {
    if v >= 1e6 {
        format!("{v:.2e}")
    } else {
        format!("{v:.0}")
    }
}

/// A metric cell: finite values print with three decimals, NaN (an
/// empty or failed aggregate) prints as `—`.
fn fmt_metric(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "—".to_string()
    }
}

/// Table 1: dataset statistics comparison.
pub fn table1(imdb: &DatasetProfile, stats: &DatasetProfile) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 1: Comparison of IMDB and STATS datasets");
    let _ = writeln!(s, "{:<34} {:>14} {:>14}", "Item", imdb.name, stats.name);
    let row = |s: &mut String, item: &str, a: String, b: String| {
        let _ = writeln!(s, "{item:<34} {a:>14} {b:>14}");
    };
    row(
        &mut s,
        "# of tables",
        imdb.table_count.to_string(),
        stats.table_count.to_string(),
    );
    row(
        &mut s,
        "# of n./c. attributes",
        imdb.nc_attr_count.to_string(),
        stats.nc_attr_count.to_string(),
    );
    row(
        &mut s,
        "# of n./c. attributes per table",
        format!("{}-{}", imdb.attrs_per_table_min, imdb.attrs_per_table_max),
        format!(
            "{}-{}",
            stats.attrs_per_table_min, stats.attrs_per_table_max
        ),
    );
    row(
        &mut s,
        "full outer join size",
        format!("{:.1e}", imdb.full_join_size),
        format!("{:.1e}", stats.full_join_size),
    );
    row(
        &mut s,
        "total attribute domain size",
        imdb.total_domain_size.to_string(),
        stats.total_domain_size.to_string(),
    );
    row(
        &mut s,
        "average distribution skewness",
        format!("{:.3}", imdb.avg_skewness),
        format!("{:.3}", stats.avg_skewness),
    );
    row(
        &mut s,
        "average pairwise correlation",
        format!("{:.3}", imdb.avg_abs_correlation),
        format!("{:.3}", stats.avg_abs_correlation),
    );
    row(
        &mut s,
        "join forms",
        imdb.join_forms.clone(),
        stats.join_forms.clone(),
    );
    row(
        &mut s,
        "# of join relations",
        imdb.join_relation_count.to_string(),
        stats.join_relation_count.to_string(),
    );
    s
}

/// Table 2: workload statistics comparison.
pub fn table2(
    db_imdb: &Database,
    imdb: &Workload,
    db_stats: &Database,
    stats: &Workload,
) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 2: Comparison of JOB-LIGHT and STATS-CEB workloads"
    );
    let _ = writeln!(s, "{:<34} {:>16} {:>16}", "Item", imdb.name, stats.name);
    let row = |s: &mut String, item: &str, a: String, b: String| {
        let _ = writeln!(s, "{item:<34} {a:>16} {b:>16}");
    };
    row(
        &mut s,
        "# of queries",
        imdb.queries.len().to_string(),
        stats.queries.len().to_string(),
    );
    let (ilo, ihi) = imdb.table_count_range();
    let (slo, shi) = stats.table_count_range();
    row(
        &mut s,
        "# of joined tables",
        format!("{ilo}-{ihi}"),
        format!("{slo}-{shi}"),
    );
    row(
        &mut s,
        "# of join templates",
        imdb.template_count.to_string(),
        stats.template_count.to_string(),
    );
    let (iplo, iphi) = imdb.predicate_count_range();
    let (splo, sphi) = stats.predicate_count_range();
    row(
        &mut s,
        "# of filtering n./c. predicates",
        format!("{iplo}-{iphi}"),
        format!("{splo}-{sphi}"),
    );
    row(
        &mut s,
        "join type",
        if imdb.has_fkfk(db_imdb) {
            "PK-FK/FK-FK"
        } else {
            "PK-FK"
        }
        .to_string(),
        if stats.has_fkfk(db_stats) {
            "PK-FK/FK-FK"
        } else {
            "PK-FK"
        }
        .to_string(),
    );
    let (iclo, ichi) = imdb.cardinality_range();
    let (sclo, schi) = stats.cardinality_range();
    row(
        &mut s,
        "true cardinality range",
        format!("{} - {}", fmt_card(iclo), fmt_card(ichi)),
        format!("{} - {}", fmt_card(sclo), fmt_card(schi)),
    );
    s
}

/// Locates the PostgreSQL baseline run. `None` when the result set is
/// partial (e.g. a resumed run killed before the baseline finished);
/// renderers then print `—` cells or a note instead of panicking.
pub fn baseline(runs: &[MethodRun]) -> Option<&MethodRun> {
    runs.iter().find(|r| r.kind == EstimatorKind::Postgres)
}

/// Table 3: overall end-to-end performance on both workloads.
pub fn table3(imdb_runs: &[MethodRun], stats_runs: &[MethodRun]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 3: Overall performance of CardEst algorithms");
    let _ = writeln!(
        s,
        "{:<13} {:<12} | {:>10} {:>18} {:>8} | {:>10} {:>18} {:>8}",
        "Category",
        "Method",
        "JL E2E",
        "JL Exec+Plan",
        "JL Impr",
        "SC E2E",
        "SC Exec+Plan",
        "SC Impr"
    );
    let base_i = baseline(imdb_runs).map(MethodRun::e2e_total);
    let base_s = baseline(stats_runs).map(MethodRun::e2e_total);
    let impr = |run: &MethodRun, base: Option<Duration>| match base {
        Some(b) => format!("{:.1}%", run.improvement_over(b)),
        None => "—".to_string(),
    };
    for kind in EstimatorKind::ALL {
        let (Some(ri), Some(rs)) = (
            imdb_runs.iter().find(|r| r.kind == kind),
            stats_runs.iter().find(|r| r.kind == kind),
        ) else {
            continue;
        };
        let _ = writeln!(
            s,
            "{:<13} {:<12} | {:>10} {:>18} {:>8} | {:>10} {:>18} {:>8}",
            kind.class(),
            kind.name(),
            fmt_duration(ri.e2e_total()),
            format!(
                "{} + {}",
                fmt_duration(ri.exec_total()),
                fmt_duration(ri.plan_total())
            ),
            impr(ri, base_i),
            fmt_duration(rs.e2e_total()),
            format!(
                "{} + {}",
                fmt_duration(rs.exec_total()),
                fmt_duration(rs.plan_total())
            ),
            impr(rs, base_s),
        );
    }
    s
}

/// The join-count buckets of paper Table 4.
pub const JOIN_BUCKETS: [(usize, usize, &str); 4] =
    [(2, 3, "2-3"), (4, 4, "4"), (5, 5, "5"), (6, 8, "6-8")];

/// Table 4: end-to-end improvement by number of joined tables
/// (STATS-CEB).
pub fn table4(stats_runs: &[MethodRun]) -> String {
    let shown = [
        EstimatorKind::PessEst,
        EstimatorKind::Mscn,
        EstimatorKind::BayesCard,
        EstimatorKind::DeepDb,
        EstimatorKind::Flat,
        EstimatorKind::TrueCard,
    ];
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 4: E2E improvement by # of joined tables (STATS-CEB)"
    );
    let Some(base) = baseline(stats_runs) else {
        let _ = writeln!(
            s,
            "(PostgreSQL baseline missing — improvements unavailable)"
        );
        return s;
    };
    let _ = write!(s, "{:<9} {:>9}", "# tables", "# queries");
    for k in shown {
        let _ = write!(s, " {:>11}", k.name());
    }
    let _ = writeln!(s);
    for (lo, hi, label) in JOIN_BUCKETS {
        let in_bucket =
            |r: &&crate::endtoend::QueryRun| r.completed() && r.n_tables >= lo && r.n_tables <= hi;
        let base_time: f64 = base
            .queries
            .iter()
            .filter(in_bucket)
            .map(|q| (q.exec + q.plan).as_secs_f64())
            .sum();
        let nq = base.queries.iter().filter(in_bucket).count();
        let _ = write!(s, "{label:<9} {nq:>9}");
        for k in shown {
            let run = stats_runs.iter().find(|r| r.kind == k);
            match run {
                Some(run) => {
                    let t: f64 = run
                        .queries
                        .iter()
                        .filter(in_bucket)
                        .map(|q| (q.exec + q.plan).as_secs_f64())
                        .sum();
                    let impr = if base_time > 0.0 {
                        (base_time - t) / base_time * 100.0
                    } else {
                        0.0
                    };
                    let _ = write!(s, " {impr:>10.1}%");
                }
                None => {
                    let _ = write!(s, " {:>11}", "—");
                }
            }
        }
        let _ = writeln!(s);
    }
    s
}

/// Supplement to Table 4 (paper O4): median sub-plan Q-Error per
/// join-count bucket — the estimation-error growth that produces the
/// shrinking improvements.
pub fn table4_qerrors(stats_runs: &[MethodRun]) -> String {
    let shown = [
        EstimatorKind::Postgres,
        EstimatorKind::PessEst,
        EstimatorKind::Mscn,
        EstimatorKind::BayesCard,
        EstimatorKind::DeepDb,
        EstimatorKind::Flat,
    ];
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 4 supplement: median sub-plan Q-Error by # of joined tables"
    );
    let _ = write!(s, "{:<9}", "# tables");
    for k in shown {
        let _ = write!(s, " {:>11}", k.name());
    }
    let _ = writeln!(s);
    for (lo, hi, label) in JOIN_BUCKETS {
        let _ = write!(s, "{label:<9}");
        for k in shown {
            match stats_runs.iter().find(|r| r.kind == k) {
                Some(run) => {
                    let errs: Vec<f64> = run
                        .queries
                        .iter()
                        .filter(|q| q.n_tables >= lo && q.n_tables <= hi)
                        .flat_map(|q| q.q_errors.clone())
                        .collect();
                    let med = cardbench_metrics::percentile(&errs, 0.5);
                    let _ = write!(s, " {:>11}", fmt_metric(med));
                }
                None => {
                    let _ = write!(s, " {:>11}", "—");
                }
            }
        }
        let _ = writeln!(s);
    }
    s
}

/// Table 5: OLTP vs OLAP split on STATS-CEB. Queries at or below the
/// baseline's median execution time form the TP class; the rest AP.
pub fn table5(stats_runs: &[MethodRun]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 5: OLTP/OLAP performance on STATS-CEB");
    let Some(base) = baseline(stats_runs) else {
        let _ = writeln!(s, "(PostgreSQL baseline missing — TP/AP split unavailable)");
        return s;
    };
    let mut times: Vec<f64> = base
        .queries
        .iter()
        .filter(|q| q.completed())
        .map(|q| q.exec.as_secs_f64())
        .collect();
    if times.is_empty() {
        let _ = writeln!(
            s,
            "(no completed baseline queries — TP/AP split unavailable)"
        );
        return s;
    }
    times.sort_by(f64::total_cmp);
    let median = times[times.len() / 2];
    let tp_ids: Vec<usize> = base
        .queries
        .iter()
        .filter(|q| q.completed() && q.exec.as_secs_f64() <= median)
        .map(|q| q.id)
        .collect();
    let _ = writeln!(
        s,
        "{:<12} {:>12} {:>20} {:>12} {:>20}",
        "Method", "TP Exec", "TP Plan (share)", "AP Exec", "AP Plan (share)"
    );
    for run in stats_runs {
        let (mut tpe, mut tpp, mut ape, mut app) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for q in run.queries.iter().filter(|q| q.completed()) {
            if tp_ids.contains(&q.id) {
                tpe += q.exec.as_secs_f64();
                tpp += q.plan.as_secs_f64();
            } else {
                ape += q.exec.as_secs_f64();
                app += q.plan.as_secs_f64();
            }
        }
        let share = |p: f64, e: f64| {
            if p + e > 0.0 {
                p / (p + e) * 100.0
            } else {
                0.0
            }
        };
        let _ = writeln!(
            s,
            "{:<12} {:>12} {:>20} {:>12} {:>20}",
            run.kind.name(),
            fmt_duration(Duration::from_secs_f64(tpe)),
            format!(
                "{} ({:.1}%)",
                fmt_duration(Duration::from_secs_f64(tpp)),
                share(tpp, tpe)
            ),
            fmt_duration(Duration::from_secs_f64(ape)),
            format!(
                "{} ({:.2}%)",
                fmt_duration(Duration::from_secs_f64(app)),
                share(app, ape)
            ),
        );
    }
    s
}

/// Table 7: Q-Error vs P-Error distributions, methods sorted by
/// descending execution time, plus the percentile↔time correlations.
pub fn table7(runs: &[MethodRun], workload_name: &str) -> String {
    let mut sorted: Vec<&MethodRun> = runs.iter().collect();
    sorted.sort_by_key(|r| std::cmp::Reverse(r.exec_total()));
    let mut s = String::new();
    let _ = writeln!(s, "Table 7 ({workload_name}): Q-Error vs P-Error");
    let _ = writeln!(
        s,
        "{:<12} {:>10} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "Method", "Exec", "Q50%", "Q90%", "Q99%", "P50%", "P90%", "P99%"
    );
    let mut exec_times = Vec::new();
    let mut q50s = Vec::new();
    let mut q90s = Vec::new();
    let mut p50s = Vec::new();
    let mut p90s = Vec::new();
    for run in &sorted {
        let (q50, q90, q99) = percentile_triple(&run.all_q_errors());
        let (p50, p90, p99) = percentile_triple(&run.all_p_errors());
        let _ = writeln!(
            s,
            "{:<12} {:>10} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
            run.kind.name(),
            fmt_duration(run.exec_total()),
            fmt_metric(q50),
            fmt_metric(q90),
            fmt_metric(q99),
            fmt_metric(p50),
            fmt_metric(p90),
            fmt_metric(p99)
        );
        // Correlations only make sense over finite aggregates; a method
        // with no completed queries would poison every coefficient.
        if [q50, q90, p50, p90].iter().all(|v| v.is_finite()) {
            exec_times.push(run.exec_total().as_secs_f64());
            q50s.push(q50);
            q90s.push(q90);
            p50s.push(p50);
            p90s.push(p90);
        }
    }
    let _ = writeln!(
        s,
        "corr(exec, Q50)={:.3} corr(exec, Q90)={:.3} corr(exec, P50)={:.3} corr(exec, P90)={:.3}",
        pearson(&exec_times, &q50s),
        pearson(&exec_times, &q90s),
        pearson(&exec_times, &p50s),
        pearson(&exec_times, &p90s),
    );
    s
}

/// Operator-counter supplement to Table 3: per-method totals of the
/// executor's operator-level counters, so slow end-to-end times can be
/// attributed to the operator work (builds, probes, gathers, spills) the
/// chosen plans actually performed — the Observation-style analyses the
/// wall-clock numbers alone can't support.
pub fn table_exec_counters(runs: &[MethodRun], workload_name: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 3 supplement ({workload_name}): operator-level execution counters"
    );
    let _ = writeln!(
        s,
        "{:<12} {:>10} | {:>12} {:>12} {:>12} {:>12} {:>7} {:>10}",
        "Method", "Exec", "Intermed", "Build", "Probe", "Gathered", "Spills", "Peak mem"
    );
    for run in runs {
        let t = run.exec_stats_total();
        let _ = writeln!(
            s,
            "{:<12} {:>10} | {:>12} {:>12} {:>12} {:>12} {:>7} {:>10}",
            run.kind.name(),
            fmt_duration(run.exec_total()),
            t.intermediate_rows,
            t.build_rows,
            t.probe_rows,
            t.rows_gathered,
            t.partitions_spilled,
            fmt_bytes(t.peak_intermediate_bytes as usize),
        );
    }
    s
}

/// Fault-tolerance summary: per-method counts of whole-query failures
/// and typed sub-plan estimate failures, clamp interventions, and
/// baseline fallbacks, followed by one `failed(<reason>)` line per
/// failed query. This is the table that makes a chaos or partially
/// crashed run legible.
pub fn table_faults(runs: &[MethodRun], workload_name: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Fault summary ({workload_name})");
    let _ = writeln!(
        s,
        "{:<12} {:>7} {:>7} {:>9} {:>7} {:>9} {:>8} {:>8} {:>9} {:>7}",
        "Method",
        "Queries",
        "Failed",
        "EstFails",
        "Panics",
        "Timeouts",
        "NonFin",
        "Degen",
        "Fallbacks",
        "ExclQE"
    );
    for run in runs {
        let kind_count = |kind: &str| -> usize {
            run.queries
                .iter()
                .flat_map(|q| &q.est_failures)
                .filter(|f| f.error.kind() == kind)
                .count()
        };
        let _ = writeln!(
            s,
            "{:<12} {:>7} {:>7} {:>9} {:>7} {:>9} {:>8} {:>8} {:>9} {:>7}",
            run.kind.name(),
            run.queries.len(),
            run.failed_queries(),
            run.est_failure_total(),
            kind_count("panicked"),
            kind_count("timed_out"),
            kind_count("non_finite"),
            kind_count("degenerate"),
            run.fallback_total(),
            run.excluded_qerror_total(),
        );
    }
    let mut any_failed = false;
    for run in runs {
        for q in run.queries.iter().filter(|q| !q.completed()) {
            if let Some(f) = &q.failure {
                if !any_failed {
                    let _ = writeln!(s, "Failed queries:");
                    any_failed = true;
                }
                let _ = writeln!(s, "  {:<12} Q{:<5} failed({f})", run.kind.name(), q.id);
            }
        }
    }
    if !any_failed {
        let _ = writeln!(s, "All queries executed to completion.");
    }
    s
}

/// Per-query "where did the time go" breakdown: for each method, the
/// slowest queries with planning vs execution split and the operator
/// counters that explain the execution side. `top_n` bounds the rows per
/// method so a 146-query workload stays readable; pass `usize::MAX` for
/// everything.
pub fn table_time_breakdown(runs: &[MethodRun], workload_name: &str, top_n: usize) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Time breakdown ({workload_name}): slowest queries per method"
    );
    let _ = writeln!(
        s,
        "{:<12} {:>6} {:>10} {:>10} {:>6} | {:>12} {:>12} {:>7} {:>10}",
        "Method", "Query", "Plan", "Exec", "Plan%", "Build", "Probe", "Spills", "Peak mem"
    );
    for run in runs {
        let mut by_time: Vec<&crate::endtoend::QueryRun> =
            run.queries.iter().filter(|q| q.completed()).collect();
        by_time.sort_by_key(|q| std::cmp::Reverse(q.plan + q.exec));
        for q in by_time.iter().take(top_n) {
            let plan = q.plan.as_secs_f64();
            let exec = q.exec.as_secs_f64();
            let share = if plan + exec > 0.0 {
                plan / (plan + exec) * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                s,
                "{:<12} {:>6} {:>10} {:>10} {:>5.1}% | {:>12} {:>12} {:>7} {:>10}",
                run.kind.name(),
                format!("Q{}", q.id),
                fmt_duration(q.plan),
                fmt_duration(q.exec),
                share,
                q.exec_stats.build_rows,
                q.exec_stats.probe_rows,
                q.exec_stats.partitions_spilled,
                fmt_bytes(q.exec_stats.peak_intermediate_bytes as usize),
            );
        }
        let skipped = run.queries.iter().filter(|q| !q.completed()).count();
        if skipped > 0 {
            let _ = writeln!(
                s,
                "{:<12} ({} failed queries omitted)",
                run.kind.name(),
                skipped
            );
        }
    }
    s
}

/// Figure 3 data: practicality aspects (inference latency, model size,
/// training time) per method.
pub fn figure3(runs: &[MethodRun], workload_name: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Figure 3 ({workload_name}): practicality aspects");
    let _ = writeln!(
        s,
        "{:<12} {:>16} {:>12} {:>14}",
        "Method", "Avg inference", "Model size", "Training time"
    );
    for run in runs {
        let _ = writeln!(
            s,
            "{:<12} {:>16} {:>12} {:>14}",
            run.kind.name(),
            fmt_duration(run.avg_inference()),
            fmt_bytes(run.model_size),
            fmt_duration(run.train_time),
        );
    }
    s
}

/// Figure 1: the schema join graph in Graphviz DOT form.
pub fn figure1_dot(db: &Database) -> String {
    let mut s = String::from("graph stats_schema {\n");
    for t in db.catalog().tables() {
        let _ = writeln!(s, "  {:?} [shape=box];", t.name());
    }
    for j in db.catalog().joins() {
        let _ = writeln!(
            s,
            "  {:?} -- {:?} [label=\"{}.{} = {}.{} ({:?})\"];",
            j.left_table,
            j.right_table,
            j.left_table,
            j.left_column,
            j.right_table,
            j.right_column,
            j.kind
        );
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endtoend::QueryRun;
    use crate::fault::QueryFailure;

    fn fake_run(kind: EstimatorKind, exec_ms: u64) -> MethodRun {
        let queries = (1..=4)
            .map(|id| QueryRun {
                id,
                n_tables: id + 1,
                true_card: 100.0 * id as f64,
                exec: Duration::from_millis(exec_ms * id as u64),
                plan: Duration::from_micros(50),
                subplans: 3,
                p_error: 1.0 + id as f64 / 10.0,
                q_errors: vec![1.0, 2.0 * id as f64],
                sub_est_cards: vec![100.0 * id as f64, 50.0],
                sub_true_cards: vec![100.0 * id as f64, 100.0],
                result_rows: 100 * id as u64,
                exec_stats: cardbench_engine::ExecStats {
                    output_rows: 100 * id as u64,
                    intermediate_rows: 250 * id as u64,
                    build_rows: 120 * id as u64,
                    probe_rows: 130 * id as u64,
                    rows_gathered: 300 * id as u64,
                    partitions_spilled: id as u64 - 1,
                    peak_intermediate_bytes: 2048 * id as u64,
                },
                est_failures: vec![],
                clamped_subplans: 0,
                fallback_subplans: 0,
                excluded_qerrors: 0,
                failure: None,
            })
            .collect();
        MethodRun {
            kind,
            train_time: Duration::from_millis(3),
            model_size: 2048,
            queries,
        }
    }

    fn fake_runs() -> Vec<MethodRun> {
        vec![
            fake_run(EstimatorKind::Postgres, 10),
            fake_run(EstimatorKind::TrueCard, 5),
            fake_run(EstimatorKind::PessEst, 8),
            fake_run(EstimatorKind::Mscn, 9),
            fake_run(EstimatorKind::BayesCard, 6),
            fake_run(EstimatorKind::DeepDb, 6),
            fake_run(EstimatorKind::Flat, 6),
        ]
    }

    #[test]
    fn table3_reports_improvements() {
        let runs = fake_runs();
        let s = table3(&runs, &runs);
        assert!(s.contains("PostgreSQL"));
        assert!(s.contains("TrueCard"));
        // TrueCard at half the baseline exec shows ~50% improvement.
        let tc_line = s.lines().find(|l| l.contains("TrueCard")).unwrap();
        assert!(
            tc_line.contains("49.") || tc_line.contains("50."),
            "{tc_line}"
        );
    }

    #[test]
    fn table3_without_baseline_prints_dashes() {
        let runs = vec![fake_run(EstimatorKind::TrueCard, 5)];
        let s = table3(&runs, &runs);
        let tc_line = s.lines().find(|l| l.contains("TrueCard")).unwrap();
        assert!(tc_line.contains('—'), "{tc_line}");
    }

    #[test]
    fn table4_buckets_cover_all_methods() {
        let s = table4(&fake_runs());
        for name in ["PessEst", "MSCN", "BayesCard", "DeepDB", "FLAT", "TrueCard"] {
            assert!(
                s.contains(name),
                "missing {name}:
{s}"
            );
        }
        assert!(s.contains("2-3") && s.contains("6-8"));
    }

    #[test]
    fn table4_qerror_supplement_renders() {
        let s = table4_qerrors(&fake_runs());
        assert!(s.contains("Q-Error"));
        assert!(s.lines().count() >= 6);
    }

    #[test]
    fn table5_splits_tp_ap() {
        let s = table5(&fake_runs());
        assert!(s.contains("TP Exec"));
        assert!(s.contains("AP Plan"));
        assert!(s.lines().count() >= 9);
    }

    #[test]
    fn tables_survive_missing_baseline_and_empty_runs() {
        // No PostgreSQL run at all.
        let runs = vec![fake_run(EstimatorKind::TrueCard, 5)];
        assert!(table4(&runs).contains("baseline missing"));
        assert!(table5(&runs).contains("baseline missing"));
        // Baseline present but every query failed.
        let mut failed = fake_run(EstimatorKind::Postgres, 10);
        for q in &mut failed.queries {
            q.failure = Some(QueryFailure::Bind {
                message: "x".into(),
            });
        }
        let runs = vec![failed];
        assert!(table5(&runs).contains("no completed baseline queries"));
        let t7 = table7(&runs, "STATS-CEB");
        assert!(t7.contains("corr(exec"), "{t7}");
        // P-percentiles of an all-failed run render as dashes.
        assert!(t7.contains('—'), "{t7}");
    }

    #[test]
    fn fault_table_lists_failed_queries() {
        let mut run = fake_run(EstimatorKind::Postgres, 10);
        run.queries[2].failure = Some(QueryFailure::ExecBudget {
            peak_bytes: 4096,
            budget_bytes: 1024,
        });
        let s = table_faults(&[run], "STATS-CEB");
        assert!(s.contains("Fault summary"), "{s}");
        assert!(
            s.contains("failed(memory budget exceeded (4096B > 1024B))"),
            "{s}"
        );
        let clean = table_faults(&fake_runs(), "STATS-CEB");
        assert!(clean.contains("All queries executed to completion."));
    }

    #[test]
    fn table7_sorted_by_exec_desc() {
        let s = table7(&fake_runs(), "STATS-CEB");
        let pg_pos = s.find("PostgreSQL").unwrap();
        let tc_pos = s.find("TrueCard").unwrap();
        // PostgreSQL (slowest fake) must be listed before TrueCard.
        assert!(pg_pos < tc_pos, "{s}");
        assert!(s.contains("corr(exec"));
    }

    #[test]
    fn exec_counters_table_totals() {
        let s = table_exec_counters(&fake_runs(), "STATS-CEB");
        assert!(s.contains("operator-level execution counters"), "{s}");
        // Sums over the four fake queries: 250*(1+2+3+4) intermediates,
        // 120*10 builds, (1-1)+(2-1)+(3-1)+(4-1)=6 spills, peak 8KB.
        let pg = s.lines().find(|l| l.starts_with("PostgreSQL")).unwrap();
        assert!(pg.contains("2500"), "{pg}");
        assert!(pg.contains("1200"), "{pg}");
        assert!(pg.contains(" 6 "), "{pg}");
        assert!(pg.contains("8.0KB"), "{pg}");
    }

    #[test]
    fn time_breakdown_sorts_and_bounds_rows() {
        let mut run = fake_run(EstimatorKind::Postgres, 10);
        run.queries[0].failure = Some(QueryFailure::Bind {
            message: "x".into(),
        });
        let s = table_time_breakdown(&[run], "STATS-CEB", 2);
        assert!(s.contains("Time breakdown"), "{s}");
        // Q4 is the slowest fake query and must appear; the failed Q1
        // must not get a timing row.
        assert!(s.contains("Q4"), "{s}");
        assert!(!s.contains("Q1 "), "{s}");
        assert!(s.contains("(1 failed queries omitted)"), "{s}");
        // top_n=2 over 3 completed queries drops Q2.
        assert!(!s.contains("Q2"), "{s}");
    }

    #[test]
    fn fault_table_reports_excluded_qerrors() {
        let mut run = fake_run(EstimatorKind::Postgres, 10);
        run.queries[1].excluded_qerrors = 3;
        let s = table_faults(&[run], "STATS-CEB");
        assert!(s.contains("ExclQE"), "{s}");
        let pg = s.lines().find(|l| l.starts_with("PostgreSQL")).unwrap();
        assert!(pg.trim_end().ends_with('3'), "{pg}");
    }

    #[test]
    fn figure3_lists_practicality() {
        let s = figure3(&fake_runs(), "STATS-CEB");
        assert!(s.contains("Model size"));
        assert!(s.contains("2.0KB"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.0µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(3)), "3.00s");
        assert_eq!(fmt_duration(Duration::from_secs(500)), "500s");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(100), "100B");
        assert_eq!(fmt_bytes(2048), "2.0KB");
        assert_eq!(fmt_bytes(3 << 20), "3.0MB");
    }

    #[test]
    fn card_formatting() {
        assert_eq!(fmt_card(200.0), "200");
        assert_eq!(fmt_card(2e10), "2.00e10");
    }
}
