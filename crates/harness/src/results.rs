//! Serializable benchmark results: a stable JSON schema for downstream
//! analysis, plotting, and regression tracking across runs.

use std::io::Write as _;
use std::path::Path;

use cardbench_support::json::{Json, JsonError};

use cardbench_metrics::percentile_triple;

use crate::endtoend::MethodRun;

/// One method's summary on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodSummary {
    /// Method display name.
    pub method: String,
    /// Method class.
    pub class: String,
    /// Workload name.
    pub workload: String,
    /// Total execution seconds.
    pub exec_secs: f64,
    /// Total planning seconds.
    pub plan_secs: f64,
    /// Training seconds.
    pub train_secs: f64,
    /// Model size in bytes.
    pub model_bytes: usize,
    /// Mean inference latency per sub-plan, seconds.
    pub avg_inference_secs: f64,
    /// Q-Error percentiles (50/90/99).
    pub q_error: (f64, f64, f64),
    /// P-Error percentiles (50/90/99).
    pub p_error: (f64, f64, f64),
    /// Queries that produced no executed result (bind/truth/budget).
    pub failed_queries: u64,
    /// Typed sub-plan estimate failures across all queries.
    pub est_failures: u64,
    /// Sub-plan estimates the engine clamp intervened on.
    pub clamped_subplans: u64,
    /// Sub-plans degraded to the PostgreSQL baseline estimate.
    pub fallback_subplans: u64,
    /// Sub-plan Q-Errors excluded from the percentiles because the raw
    /// estimate was non-finite or degenerate.
    pub excluded_qerrors: u64,
    /// Per-query records.
    pub queries: Vec<QueryRecord>,
}

/// One query's record.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRecord {
    /// Workload query id.
    pub id: usize,
    /// Joined tables.
    pub tables: usize,
    /// True cardinality.
    pub true_card: f64,
    /// Execution seconds.
    pub exec_secs: f64,
    /// Planning seconds.
    pub plan_secs: f64,
    /// P-Error.
    pub p_error: f64,
    /// Median sub-plan Q-Error.
    pub q_error_median: f64,
    /// Intermediate rows materialized by the chosen plan.
    pub intermediate_rows: u64,
    /// Rows fed to join build sides.
    pub build_rows: u64,
    /// Rows fed to join probe sides.
    pub probe_rows: u64,
    /// Rows gathered through selection vectors.
    pub rows_gathered: u64,
    /// Partitions written by spilling hash joins.
    pub partitions_spilled: u64,
    /// Peak bytes of live intermediates.
    pub peak_intermediate_bytes: u64,
    /// Whole-query failure rendered as `kind: detail` (`None` when the
    /// query executed to completion).
    pub failure: Option<String>,
    /// Typed sub-plan estimate failures on this query.
    pub est_failures: u64,
    /// Sub-plan estimates clamped on this query.
    pub clamped_subplans: u64,
    /// Sub-plans degraded to the baseline on this query.
    pub fallback_subplans: u64,
    /// Sub-plan Q-Errors excluded from aggregation on this query.
    pub excluded_qerrors: u64,
}

impl MethodSummary {
    /// Builds the summary from a run.
    pub fn from_run(run: &MethodRun, workload: &str) -> MethodSummary {
        let queries = run
            .queries
            .iter()
            .map(|q| QueryRecord {
                id: q.id,
                tables: q.n_tables,
                true_card: q.true_card,
                exec_secs: q.exec.as_secs_f64(),
                plan_secs: q.plan.as_secs_f64(),
                p_error: q.p_error,
                q_error_median: cardbench_metrics::percentile(&q.q_errors, 0.5),
                intermediate_rows: q.exec_stats.intermediate_rows,
                build_rows: q.exec_stats.build_rows,
                probe_rows: q.exec_stats.probe_rows,
                rows_gathered: q.exec_stats.rows_gathered,
                partitions_spilled: q.exec_stats.partitions_spilled,
                peak_intermediate_bytes: q.exec_stats.peak_intermediate_bytes,
                failure: q.failure.as_ref().map(|f| f.to_string()),
                est_failures: q.est_failures.len() as u64,
                clamped_subplans: q.clamped_subplans,
                fallback_subplans: q.fallback_subplans,
                excluded_qerrors: q.excluded_qerrors,
            })
            .collect();
        MethodSummary {
            method: run.kind.name().to_string(),
            class: run.kind.class().to_string(),
            workload: workload.to_string(),
            exec_secs: run.exec_total().as_secs_f64(),
            plan_secs: run.plan_total().as_secs_f64(),
            train_secs: run.train_time.as_secs_f64(),
            model_bytes: run.model_size,
            avg_inference_secs: run.avg_inference().as_secs_f64(),
            q_error: percentile_triple(&run.all_q_errors()),
            p_error: percentile_triple(&run.all_p_errors()),
            failed_queries: run.failed_queries() as u64,
            est_failures: run.est_failure_total() as u64,
            clamped_subplans: run.clamped_total(),
            fallback_subplans: run.fallback_total(),
            excluded_qerrors: run.excluded_qerror_total(),
            queries,
        }
    }

    fn to_value(&self) -> Json {
        Json::object([
            ("method", Json::String(self.method.clone())),
            ("class", Json::String(self.class.clone())),
            ("workload", Json::String(self.workload.clone())),
            ("exec_secs", Json::Number(self.exec_secs)),
            ("plan_secs", Json::Number(self.plan_secs)),
            ("train_secs", Json::Number(self.train_secs)),
            ("model_bytes", Json::Number(self.model_bytes as f64)),
            ("avg_inference_secs", Json::Number(self.avg_inference_secs)),
            ("q_error", triple_to_value(self.q_error)),
            ("p_error", triple_to_value(self.p_error)),
            ("failed_queries", Json::Number(self.failed_queries as f64)),
            ("est_failures", Json::Number(self.est_failures as f64)),
            (
                "clamped_subplans",
                Json::Number(self.clamped_subplans as f64),
            ),
            (
                "fallback_subplans",
                Json::Number(self.fallback_subplans as f64),
            ),
            (
                "excluded_qerrors",
                Json::Number(self.excluded_qerrors as f64),
            ),
            (
                "queries",
                Json::Array(self.queries.iter().map(QueryRecord::to_value).collect()),
            ),
        ])
    }

    fn from_value(v: &Json) -> Result<MethodSummary, JsonError> {
        Ok(MethodSummary {
            method: str_field(v, "method")?,
            class: str_field(v, "class")?,
            workload: str_field(v, "workload")?,
            exec_secs: num_field(v, "exec_secs")?,
            plan_secs: num_field(v, "plan_secs")?,
            train_secs: num_field(v, "train_secs")?,
            model_bytes: num_field(v, "model_bytes")? as usize,
            avg_inference_secs: num_field(v, "avg_inference_secs")?,
            q_error: triple_field(v, "q_error")?,
            p_error: triple_field(v, "p_error")?,
            // Fault counters default to zero so pre-fault-tolerance
            // result files still parse.
            failed_queries: opt_num_field(v, "failed_queries") as u64,
            est_failures: opt_num_field(v, "est_failures") as u64,
            clamped_subplans: opt_num_field(v, "clamped_subplans") as u64,
            fallback_subplans: opt_num_field(v, "fallback_subplans") as u64,
            excluded_qerrors: opt_num_field(v, "excluded_qerrors") as u64,
            queries: array_field(v, "queries")?
                .iter()
                .map(QueryRecord::from_value)
                .collect::<Result<_, _>>()?,
        })
    }
}

impl QueryRecord {
    fn to_value(&self) -> Json {
        Json::object([
            ("id", Json::Number(self.id as f64)),
            ("tables", Json::Number(self.tables as f64)),
            ("true_card", Json::Number(self.true_card)),
            ("exec_secs", Json::Number(self.exec_secs)),
            ("plan_secs", Json::Number(self.plan_secs)),
            ("p_error", Json::Number(self.p_error)),
            ("q_error_median", Json::Number(self.q_error_median)),
            (
                "intermediate_rows",
                Json::Number(self.intermediate_rows as f64),
            ),
            ("build_rows", Json::Number(self.build_rows as f64)),
            ("probe_rows", Json::Number(self.probe_rows as f64)),
            ("rows_gathered", Json::Number(self.rows_gathered as f64)),
            (
                "partitions_spilled",
                Json::Number(self.partitions_spilled as f64),
            ),
            (
                "peak_intermediate_bytes",
                Json::Number(self.peak_intermediate_bytes as f64),
            ),
            (
                "failure",
                self.failure
                    .as_ref()
                    .map(|s| Json::String(s.clone()))
                    .unwrap_or(Json::Null),
            ),
            ("est_failures", Json::Number(self.est_failures as f64)),
            (
                "clamped_subplans",
                Json::Number(self.clamped_subplans as f64),
            ),
            (
                "fallback_subplans",
                Json::Number(self.fallback_subplans as f64),
            ),
            (
                "excluded_qerrors",
                Json::Number(self.excluded_qerrors as f64),
            ),
        ])
    }

    fn from_value(v: &Json) -> Result<QueryRecord, JsonError> {
        Ok(QueryRecord {
            id: num_field(v, "id")? as usize,
            tables: num_field(v, "tables")? as usize,
            true_card: num_field(v, "true_card")?,
            exec_secs: num_field(v, "exec_secs")?,
            plan_secs: num_field(v, "plan_secs")?,
            p_error: metric_field(v, "p_error")?,
            q_error_median: metric_field(v, "q_error_median")?,
            intermediate_rows: num_field(v, "intermediate_rows")? as u64,
            build_rows: num_field(v, "build_rows")? as u64,
            probe_rows: num_field(v, "probe_rows")? as u64,
            rows_gathered: num_field(v, "rows_gathered")? as u64,
            partitions_spilled: num_field(v, "partitions_spilled")? as u64,
            peak_intermediate_bytes: num_field(v, "peak_intermediate_bytes")? as u64,
            failure: v
                .get("failure")
                .and_then(Json::as_str)
                .map(|s| s.to_string()),
            est_failures: opt_num_field(v, "est_failures") as u64,
            clamped_subplans: opt_num_field(v, "clamped_subplans") as u64,
            fallback_subplans: opt_num_field(v, "fallback_subplans") as u64,
            excluded_qerrors: opt_num_field(v, "excluded_qerrors") as u64,
        })
    }
}

/// Optional numeric field: absent or mistyped reads as zero (forward
/// compatibility with result files written before the field existed).
fn opt_num_field(v: &Json, key: &str) -> f64 {
    v.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn shape_err(msg: impl Into<String>) -> JsonError {
    JsonError {
        message: msg.into(),
        offset: 0,
    }
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, JsonError> {
    v.get(key)
        .ok_or_else(|| shape_err(format!("missing field `{key}`")))
}

fn num_field(v: &Json, key: &str) -> Result<f64, JsonError> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| shape_err(format!("field `{key}` is not a number")))
}

/// Metric field that may legitimately be NaN (empty or all-excluded
/// aggregate). The writer emits `null` for non-finite values — JSON has
/// no NaN — so `null` reads back as NaN instead of failing the parse.
fn metric_field(v: &Json, key: &str) -> Result<f64, JsonError> {
    match field(v, key)? {
        Json::Null => Ok(f64::NAN),
        n => n
            .as_f64()
            .ok_or_else(|| shape_err(format!("field `{key}` is not a number"))),
    }
}

fn metric_value(j: &Json) -> Result<f64, JsonError> {
    match j {
        Json::Null => Ok(f64::NAN),
        n => n.as_f64().ok_or_else(|| shape_err("non-numeric triple")),
    }
}

fn str_field(v: &Json, key: &str) -> Result<String, JsonError> {
    Ok(field(v, key)?
        .as_str()
        .ok_or_else(|| shape_err(format!("field `{key}` is not a string")))?
        .to_string())
}

fn array_field<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], JsonError> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| shape_err(format!("field `{key}` is not an array")))
}

fn triple_to_value(t: (f64, f64, f64)) -> Json {
    Json::Array(vec![
        Json::Number(t.0),
        Json::Number(t.1),
        Json::Number(t.2),
    ])
}

fn triple_field(v: &Json, key: &str) -> Result<(f64, f64, f64), JsonError> {
    let arr = array_field(v, key)?;
    match arr {
        [a, b, c] => Ok((metric_value(a)?, metric_value(b)?, metric_value(c)?)),
        _ => Err(shape_err(format!("field `{key}` is not a 3-array"))),
    }
}

/// A whole benchmark run's results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunResults {
    /// Summaries for every (method, workload) pair.
    pub summaries: Vec<MethodSummary>,
}

impl RunResults {
    /// Collects summaries from per-workload runs.
    pub fn collect(imdb_runs: &[MethodRun], stats_runs: &[MethodRun]) -> RunResults {
        let mut summaries = Vec::new();
        for r in imdb_runs {
            summaries.push(MethodSummary::from_run(r, "JOB-LIGHT"));
        }
        for r in stats_runs {
            summaries.push(MethodSummary::from_run(r, "STATS-CEB"));
        }
        RunResults { summaries }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        Json::object([(
            "summaries",
            Json::Array(self.summaries.iter().map(MethodSummary::to_value).collect()),
        )])
        .pretty()
    }

    /// Parses from JSON.
    pub fn from_json(s: &str) -> Result<RunResults, JsonError> {
        let v = Json::parse(s)?;
        Ok(RunResults {
            summaries: array_field(&v, "summaries")?
                .iter()
                .map(MethodSummary::from_value)
                .collect::<Result<_, _>>()?,
        })
    }

    /// Writes JSON to a file.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardbench_engine::ExecStats;
    use cardbench_estimators::EstimatorKind;
    use std::time::Duration;

    fn sample_run() -> MethodRun {
        MethodRun {
            kind: EstimatorKind::Postgres,
            train_time: Duration::from_millis(5),
            model_size: 1024,
            queries: vec![crate::endtoend::QueryRun {
                id: 1,
                n_tables: 3,
                true_card: 42.0,
                exec: Duration::from_millis(7),
                plan: Duration::from_micros(30),
                subplans: 6,
                p_error: 1.5,
                q_errors: vec![1.0, 2.0, 4.0],
                sub_est_cards: vec![40.0, 21.0, 10.5],
                sub_true_cards: vec![40.0, 42.0, 42.0],
                result_rows: 42,
                exec_stats: ExecStats {
                    output_rows: 42,
                    intermediate_rows: 99,
                    build_rows: 50,
                    probe_rows: 60,
                    rows_gathered: 110,
                    partitions_spilled: 2,
                    peak_intermediate_bytes: 4096,
                },
                est_failures: vec![],
                clamped_subplans: 0,
                fallback_subplans: 0,
                excluded_qerrors: 0,
                failure: None,
            }],
        }
    }

    #[test]
    fn summary_fields() {
        let s = MethodSummary::from_run(&sample_run(), "STATS-CEB");
        assert_eq!(s.method, "PostgreSQL");
        assert_eq!(s.workload, "STATS-CEB");
        assert_eq!(s.queries.len(), 1);
        assert!((s.queries[0].q_error_median - 2.0).abs() < 1e-9);
        assert!((s.q_error.0 - 2.0).abs() < 1e-9);
        // Operator counters survive into the record.
        assert_eq!(s.queries[0].intermediate_rows, 99);
        assert_eq!(s.queries[0].build_rows, 50);
        assert_eq!(s.queries[0].probe_rows, 60);
        assert_eq!(s.queries[0].rows_gathered, 110);
        assert_eq!(s.queries[0].partitions_spilled, 2);
        assert_eq!(s.queries[0].peak_intermediate_bytes, 4096);
    }

    #[test]
    fn json_roundtrip() {
        let r = RunResults::collect(&[sample_run()], &[sample_run()]);
        let json = r.to_json();
        let back = RunResults::from_json(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.summaries.len(), 2);
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(RunResults::from_json("{}").is_err());
        assert!(RunResults::from_json("not json").is_err());
        assert!(RunResults::from_json(r#"{"summaries": [{"method": 3}]}"#).is_err());
    }
}
