//! Programmatic checks of the paper's observations (O1–O14) against a
//! finished run's results — the "shape" assertions of EXPERIMENTS.md as
//! executable checks. Each check states the paper's claim, evaluates it
//! on the measured summaries, and reports pass/fail with the numbers.

use std::fmt::Write as _;

use crate::results::{MethodSummary, RunResults};

/// Outcome of one observation check.
#[derive(Debug, Clone)]
pub struct ObservationCheck {
    /// Paper observation id (e.g. "O1").
    pub id: &'static str,
    /// The claim being checked.
    pub claim: &'static str,
    /// Whether the measured run reproduces it.
    pub pass: bool,
    /// The numbers behind the verdict.
    pub evidence: String,
}

fn find<'a>(rs: &'a RunResults, workload: &str, method: &str) -> Option<&'a MethodSummary> {
    rs.summaries
        .iter()
        .find(|s| s.workload == workload && s.method == method)
}

fn e2e(s: &MethodSummary) -> f64 {
    s.exec_secs + s.plan_secs
}

/// Runs every check.
pub fn check_observations(rs: &RunResults) -> Vec<ObservationCheck> {
    let mut out = Vec::new();
    let sc = "STATS-CEB";
    let jl = "JOB-LIGHT";

    // O1: data-driven PGMs beat the PostgreSQL baseline on STATS-CEB;
    // plain histogram/sampling traditional methods do not beat the best
    // data-driven method.
    if let (Some(pg), Some(deep), Some(flat), Some(uni)) = (
        find(rs, sc, "PostgreSQL"),
        find(rs, sc, "DeepDB"),
        find(rs, sc, "FLAT"),
        find(rs, sc, "UniSample"),
    ) {
        let best_pgm = e2e(deep).min(e2e(flat));
        out.push(ObservationCheck {
            id: "O1",
            claim: "data-driven PGM methods improve over PostgreSQL; naive sampling does not beat them",
            pass: best_pgm < e2e(pg) && e2e(uni) > best_pgm,
            evidence: format!(
                "PG {:.3}s, DeepDB {:.3}s, FLAT {:.3}s, UniSample {:.3}s",
                e2e(pg),
                e2e(deep),
                e2e(flat),
                e2e(uni)
            ),
        });
    }

    // O2: the spread between methods is larger on STATS-CEB than on
    // JOB-LIGHT (relative to the baseline).
    let spread = |workload: &str| -> Option<f64> {
        let base = e2e(find(rs, workload, "PostgreSQL")?);
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for s in rs.summaries.iter().filter(|s| {
            s.workload == workload && s.method != "NeuroCard^E" && s.method != "UniSample"
        }) {
            lo = lo.min(e2e(s) / base);
            hi = hi.max(e2e(s) / base);
        }
        Some(hi - lo)
    };
    if let (Some(s_sc), Some(s_jl)) = (spread(sc), spread(jl)) {
        out.push(ObservationCheck {
            id: "O2",
            claim: "STATS-CEB separates methods more than JOB-LIGHT",
            pass: s_sc > s_jl * 0.8, // allow noise; the paper's gap is large
            evidence: format!("relative spread STATS-CEB {s_sc:.3} vs JOB-LIGHT {s_jl:.3}"),
        });
    }

    // O3: NeuroCard's full-join modelling does not beat the baseline on
    // STATS-CEB while the divide-and-conquer data-driven methods do.
    if let (Some(pg), Some(nc), Some(bc)) = (
        find(rs, sc, "PostgreSQL"),
        find(rs, sc, "NeuroCard^E"),
        find(rs, sc, "BayesCard"),
    ) {
        out.push(ObservationCheck {
            id: "O3",
            claim: "one-model-on-full-join (NeuroCard^E) loses on STATS while per-table models win",
            pass: e2e(nc) > e2e(pg) && e2e(bc) < e2e(pg),
            evidence: format!(
                "NeuroCard^E {:.3}s vs PG {:.3}s vs BayesCard {:.3}s",
                e2e(nc),
                e2e(pg),
                e2e(bc)
            ),
        });
    }

    // O4: estimation error grows with join count for the data-driven
    // methods (median per-query Q-Error, small vs large joins).
    for method in ["BayesCard", "DeepDB", "FLAT"] {
        if let Some(s) = find(rs, sc, method) {
            let med = |lo: usize, hi: usize| {
                let v: Vec<f64> = s
                    .queries
                    .iter()
                    .filter(|q| q.tables >= lo && q.tables <= hi)
                    .map(|q| q.q_error_median)
                    .collect();
                cardbench_metrics::percentile(&v, 0.5)
            };
            let small = med(2, 3);
            let large = med(6, 8);
            if small.is_finite() && large.is_finite() {
                out.push(ObservationCheck {
                    id: "O4",
                    claim: "estimation error grows with the number of joined tables",
                    pass: large >= small,
                    evidence: format!(
                        "{method}: median Q-Error 2-3 tables {small:.2}, 6-8 tables {large:.2}"
                    ),
                });
            }
        }
    }

    // O7: planning share is larger on short (TP) queries than long (AP)
    // ones for the slow-inference methods.
    if let Some(nc) = find(rs, sc, "NeuroCard^E") {
        let mut times: Vec<f64> = nc.queries.iter().map(|q| q.exec_secs).collect();
        times.sort_by(f64::total_cmp);
        let median = times[times.len() / 2];
        let share = |pred: &dyn Fn(f64) -> bool| {
            let (mut p, mut e) = (0.0, 0.0);
            for q in &nc.queries {
                if pred(q.exec_secs) {
                    p += q.plan_secs;
                    e += q.exec_secs;
                }
            }
            p / (p + e).max(1e-12)
        };
        let tp = share(&|t| t <= median);
        let ap = share(&|t| t > median);
        out.push(ObservationCheck {
            id: "O7",
            claim: "inference latency dominates short (TP) queries more than long (AP) ones",
            pass: tp > ap,
            evidence: format!(
                "NeuroCard^E plan share: TP {:.1}% vs AP {:.1}%",
                tp * 100.0,
                ap * 100.0
            ),
        });
    }

    // O8/Figure 3: BayesCard trains faster and is smaller than the SPN
    // family, which in turn undercuts NeuroCard's training cost.
    if let (Some(bc), Some(deep), Some(nc)) = (
        find(rs, sc, "BayesCard"),
        find(rs, sc, "DeepDB"),
        find(rs, sc, "NeuroCard^E"),
    ) {
        out.push(ObservationCheck {
            id: "O8",
            claim: "training cost: BayesCard < DeepDB < NeuroCard^E",
            pass: bc.train_secs < deep.train_secs && deep.train_secs < nc.train_secs,
            evidence: format!(
                "train: BayesCard {:.3}s, DeepDB {:.3}s, NeuroCard^E {:.3}s",
                bc.train_secs, deep.train_secs, nc.train_secs
            ),
        });
    }

    // O14: across methods, P-Error medians correlate with execution time
    // at least as strongly as Q-Error medians.
    {
        let summaries: Vec<&MethodSummary> =
            rs.summaries.iter().filter(|s| s.workload == sc).collect();
        if summaries.len() >= 4 {
            let exec: Vec<f64> = summaries.iter().map(|s| s.exec_secs).collect();
            let q50: Vec<f64> = summaries.iter().map(|s| s.q_error.0.ln()).collect();
            let p50: Vec<f64> = summaries
                .iter()
                .map(|s| s.p_error.0.ln().max(-20.0))
                .collect();
            let rq = cardbench_metrics::spearman(&exec, &q50);
            let rp = cardbench_metrics::spearman(&exec, &p50);
            out.push(ObservationCheck {
                id: "O14",
                claim: "P-Error tracks execution time at least as well as Q-Error",
                pass: rp >= rq - 0.1,
                evidence: format!("spearman(exec, P50) {rp:.3} vs spearman(exec, Q50) {rq:.3}"),
            });
        }
    }
    out
}

/// Renders the checks as a report.
pub fn render_checks(checks: &[ObservationCheck]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Observation checks (paper O1-O14, shape assertions)");
    for c in checks {
        let _ = writeln!(
            s,
            "[{}] {:<4} {}\n       {}",
            if c.pass { "PASS" } else { "FAIL" },
            c.id,
            c.claim,
            c.evidence
        );
    }
    let passed = checks.iter().filter(|c| c.pass).count();
    let _ = writeln!(s, "{passed}/{} checks pass", checks.len());
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::QueryRecord;

    fn summary(workload: &str, method: &str, exec: f64, train: f64) -> MethodSummary {
        MethodSummary {
            method: method.into(),
            class: "x".into(),
            workload: workload.into(),
            exec_secs: exec,
            plan_secs: 0.01,
            train_secs: train,
            model_bytes: 100,
            avg_inference_secs: 1e-5,
            q_error: (2.0, 10.0, 100.0),
            p_error: (1.1, 2.0, 5.0),
            failed_queries: 0,
            est_failures: 0,
            clamped_subplans: 0,
            fallback_subplans: 0,
            excluded_qerrors: 0,
            queries: vec![
                QueryRecord {
                    id: 1,
                    tables: 2,
                    true_card: 10.0,
                    exec_secs: exec / 2.0,
                    plan_secs: 0.005,
                    p_error: 1.0,
                    q_error_median: 1.5,
                    intermediate_rows: 20,
                    build_rows: 10,
                    probe_rows: 12,
                    rows_gathered: 24,
                    partitions_spilled: 0,
                    peak_intermediate_bytes: 1024,
                    failure: None,
                    est_failures: 0,
                    clamped_subplans: 0,
                    fallback_subplans: 0,
                    excluded_qerrors: 0,
                },
                QueryRecord {
                    id: 2,
                    tables: 7,
                    true_card: 1e6,
                    exec_secs: exec / 2.0,
                    plan_secs: 0.005,
                    p_error: 1.5,
                    q_error_median: 8.0,
                    intermediate_rows: 2_000_000,
                    build_rows: 900_000,
                    probe_rows: 1_100_000,
                    rows_gathered: 3_000_000,
                    partitions_spilled: 15,
                    peak_intermediate_bytes: 16_000_000,
                    failure: None,
                    est_failures: 0,
                    clamped_subplans: 0,
                    fallback_subplans: 0,
                    excluded_qerrors: 0,
                },
            ],
        }
    }

    #[test]
    fn checks_pass_on_paper_shaped_results() {
        let mut rs = RunResults::default();
        for (wl, spread) in [("JOB-LIGHT", 0.1), ("STATS-CEB", 1.0)] {
            rs.summaries.push(summary(wl, "PostgreSQL", 10.0, 0.001));
            rs.summaries
                .push(summary(wl, "DeepDB", 10.0 - 3.0 * spread, 0.5));
            rs.summaries
                .push(summary(wl, "FLAT", 10.0 - 3.5 * spread, 0.6));
            rs.summaries
                .push(summary(wl, "BayesCard", 10.0 - 2.0 * spread, 0.01));
            rs.summaries
                .push(summary(wl, "UniSample", 10.0 + 2.0 * spread, 0.0));
            rs.summaries
                .push(summary(wl, "NeuroCard^E", 10.0 + 5.0 * spread, 5.0));
        }
        let checks = check_observations(&rs);
        assert!(!checks.is_empty());
        for c in &checks {
            assert!(c.pass, "{} failed: {}", c.id, c.evidence);
        }
        let report = render_checks(&checks);
        assert!(report.contains("PASS"));
    }

    #[test]
    fn checks_fail_on_inverted_results() {
        let mut rs = RunResults::default();
        for wl in ["JOB-LIGHT", "STATS-CEB"] {
            rs.summaries.push(summary(wl, "PostgreSQL", 5.0, 0.001));
            rs.summaries.push(summary(wl, "DeepDB", 10.0, 0.5));
            rs.summaries.push(summary(wl, "FLAT", 10.0, 0.6));
            rs.summaries.push(summary(wl, "BayesCard", 10.0, 0.01));
            rs.summaries.push(summary(wl, "UniSample", 1.0, 0.0));
            rs.summaries.push(summary(wl, "NeuroCard^E", 1.0, 5.0));
        }
        let checks = check_observations(&rs);
        let o1 = checks.iter().find(|c| c.id == "O1").unwrap();
        assert!(!o1.pass);
    }
}
