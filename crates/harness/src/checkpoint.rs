//! Append-only JSONL checkpoints for kill/resume recovery.
//!
//! Format: one compact JSON object per line, keyed by
//! `(method, workload, query)`:
//!
//! ```text
//! {"method":"PostgreSQL","workload":"STATS-CEB","query":3,"run":{...}}
//! ```
//!
//! The `run` object is a lossless encoding of [`QueryRun`]: durations are
//! integer nanoseconds, `u64` counters are integers (exact in f64 below
//! 2^53), and fault values that may be non-finite (NaN/±inf) travel as
//! strings because JSON numbers cannot carry them. Records are appended
//! and flushed one query at a time, so a killed process loses at most the
//! line it was writing; the loader tolerates a truncated or corrupt tail
//! by skipping unparseable lines (those queries are simply recomputed on
//! resume). Later records win over earlier ones for the same key, so
//! re-running a method over an old checkpoint self-heals.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;
use std::time::Duration;

use cardbench_engine::ExecStats;
use cardbench_support::json::Json;

use crate::endtoend::QueryRun;
use crate::fault::{EstFailure, EstimateError, QueryFailure};

/// One parsed checkpoint line.
#[derive(Debug, Clone)]
pub struct CheckpointRecord {
    /// Estimator display name.
    pub method: String,
    /// Workload display name.
    pub workload: String,
    /// The per-query record.
    pub run: QueryRun,
}

/// Streams per-query records to a JSONL checkpoint file.
#[derive(Debug)]
pub struct CheckpointWriter {
    out: BufWriter<File>,
}

impl CheckpointWriter {
    /// Opens `path` fresh, discarding any existing checkpoint.
    pub fn create(path: &Path) -> std::io::Result<CheckpointWriter> {
        Ok(CheckpointWriter {
            out: BufWriter::new(File::create(path)?),
        })
    }

    /// Opens `path` for appending (creating it if absent) — the resume
    /// mode: existing records stay, new ones follow. A file whose last
    /// line was torn by a kill mid-write gets a newline first, so the
    /// fragment corrupts only itself, never the next record.
    pub fn append(path: &Path) -> std::io::Result<CheckpointWriter> {
        let ends_with_newline = match File::open(path) {
            Ok(mut f) => {
                use std::io::Seek;
                let len = f.seek(std::io::SeekFrom::End(0))?;
                if len == 0 {
                    true
                } else {
                    f.seek(std::io::SeekFrom::End(-1))?;
                    let mut last = [0u8; 1];
                    f.read_exact(&mut last)?;
                    last[0] == b'\n'
                }
            }
            Err(_) => true,
        };
        let mut out = BufWriter::new(OpenOptions::new().append(true).create(true).open(path)?);
        if !ends_with_newline {
            writeln!(out)?;
        }
        Ok(CheckpointWriter { out })
    }

    /// Appends one record and flushes, so a kill right after loses
    /// nothing.
    pub fn write(&mut self, method: &str, workload: &str, run: &QueryRun) -> std::io::Result<()> {
        let line = Json::object([
            ("method", Json::String(method.to_string())),
            ("workload", Json::String(workload.to_string())),
            ("query", Json::Number(run.id as f64)),
            ("run", query_run_to_json(run)),
        ]);
        writeln!(self.out, "{}", line.compact())?;
        self.out.flush()
    }
}

/// Loads every parseable record of a checkpoint file. Unparseable lines
/// (a truncated tail from a killed process) are skipped, not fatal.
pub fn load_checkpoint(path: &Path) -> std::io::Result<Vec<CheckpointRecord>> {
    let mut text = String::new();
    File::open(path)?.read_to_string(&mut text)?;
    let mut records = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(v) = Json::parse(line) else { continue };
        let (Some(method), Some(workload), Some(run)) = (
            v.get("method").and_then(Json::as_str),
            v.get("workload").and_then(Json::as_str),
            v.get("run").and_then(query_run_from_json),
        ) else {
            continue;
        };
        records.push(CheckpointRecord {
            method: method.to_string(),
            workload: workload.to_string(),
            run,
        });
    }
    Ok(records)
}

fn num(n: u64) -> Json {
    Json::Number(n as f64)
}

fn duration_to_json(d: Duration) -> Json {
    // Integer nanoseconds: exact in f64 below 2^53 ns (~104 days).
    Json::Number(d.as_nanos() as f64)
}

fn duration_from_json(v: &Json) -> Option<Duration> {
    v.as_f64()
        .filter(|n| n.is_finite() && *n >= 0.0)
        .map(|n| Duration::from_nanos(n as u64))
}

/// Non-finite-safe f64 encoding: JSON numbers cannot carry NaN/±inf, so
/// fault values travel as their shortest-roundtrip string form.
fn f64_to_json_string(v: f64) -> Json {
    Json::String(format!("{v}"))
}

fn f64_from_json_string(v: &Json) -> Option<f64> {
    v.as_str().and_then(|s| s.parse().ok())
}

fn exec_stats_to_json(s: &ExecStats) -> Json {
    Json::object([
        ("output_rows", num(s.output_rows)),
        ("intermediate_rows", num(s.intermediate_rows)),
        ("build_rows", num(s.build_rows)),
        ("probe_rows", num(s.probe_rows)),
        ("rows_gathered", num(s.rows_gathered)),
        ("partitions_spilled", num(s.partitions_spilled)),
        ("peak_intermediate_bytes", num(s.peak_intermediate_bytes)),
    ])
}

fn exec_stats_from_json(v: &Json) -> Option<ExecStats> {
    let field = |k: &str| v.get(k).and_then(Json::as_f64).map(|n| n as u64);
    Some(ExecStats {
        output_rows: field("output_rows")?,
        intermediate_rows: field("intermediate_rows")?,
        build_rows: field("build_rows")?,
        probe_rows: field("probe_rows")?,
        rows_gathered: field("rows_gathered")?,
        partitions_spilled: field("partitions_spilled")?,
        peak_intermediate_bytes: field("peak_intermediate_bytes")?,
    })
}

fn est_failure_to_json(f: &EstFailure) -> Json {
    let mut pairs = vec![
        ("mask".to_string(), num(f.mask)),
        ("kind".to_string(), Json::String(f.error.kind().to_string())),
    ];
    match &f.error {
        EstimateError::Panicked { message } => {
            pairs.push(("message".to_string(), Json::String(message.clone())));
        }
        EstimateError::TimedOut { elapsed, budget } => {
            pairs.push(("elapsed_ns".to_string(), duration_to_json(*elapsed)));
            pairs.push(("budget_ns".to_string(), duration_to_json(*budget)));
        }
        EstimateError::NonFinite { value } | EstimateError::Degenerate { value } => {
            pairs.push(("value".to_string(), f64_to_json_string(*value)));
        }
        // The breaker short carries no payload: the call never ran.
        EstimateError::Shorted => {}
        EstimateError::DeadlineExceeded { late } => {
            pairs.push(("late_ns".to_string(), duration_to_json(*late)));
        }
    }
    Json::object(pairs)
}

fn est_failure_from_json(v: &Json) -> Option<EstFailure> {
    let mask = v.get("mask").and_then(Json::as_f64)? as u64;
    let error = match v.get("kind").and_then(Json::as_str)? {
        "panicked" => EstimateError::Panicked {
            message: v.get("message").and_then(Json::as_str)?.to_string(),
        },
        "timed_out" => EstimateError::TimedOut {
            elapsed: v.get("elapsed_ns").and_then(duration_from_json)?,
            budget: v.get("budget_ns").and_then(duration_from_json)?,
        },
        "non_finite" => EstimateError::NonFinite {
            value: v.get("value").and_then(f64_from_json_string)?,
        },
        "degenerate" => EstimateError::Degenerate {
            value: v.get("value").and_then(f64_from_json_string)?,
        },
        "shorted" => EstimateError::Shorted,
        "deadline_exceeded" => EstimateError::DeadlineExceeded {
            late: v.get("late_ns").and_then(duration_from_json)?,
        },
        _ => return None,
    };
    Some(EstFailure { mask, error })
}

fn query_failure_to_json(f: &QueryFailure) -> Json {
    match f {
        QueryFailure::Bind { message } => Json::object([
            ("kind", Json::String("bind".into())),
            ("message", Json::String(message.clone())),
        ]),
        QueryFailure::Truth { message } => Json::object([
            ("kind", Json::String("truth".into())),
            ("message", Json::String(message.clone())),
        ]),
        QueryFailure::ExecBudget {
            peak_bytes,
            budget_bytes,
        } => Json::object([
            ("kind", Json::String("exec_budget".into())),
            ("peak_bytes", num(*peak_bytes)),
            ("budget_bytes", num(*budget_bytes)),
        ]),
    }
}

fn query_failure_from_json(v: &Json) -> Option<QueryFailure> {
    match v.get("kind").and_then(Json::as_str)? {
        "bind" => Some(QueryFailure::Bind {
            message: v.get("message").and_then(Json::as_str)?.to_string(),
        }),
        "truth" => Some(QueryFailure::Truth {
            message: v.get("message").and_then(Json::as_str)?.to_string(),
        }),
        "exec_budget" => Some(QueryFailure::ExecBudget {
            peak_bytes: v.get("peak_bytes").and_then(Json::as_f64)? as u64,
            budget_bytes: v.get("budget_bytes").and_then(Json::as_f64)? as u64,
        }),
        _ => None,
    }
}

/// Lossless [`QueryRun`] encoding. Finite metric values are plain JSON
/// numbers; a failed query's `p_error` is NaN and encodes as a string
/// like the fault values.
pub fn query_run_to_json(run: &QueryRun) -> Json {
    let f64s = |xs: &[f64]| Json::Array(xs.iter().map(|&x| Json::Number(x)).collect());
    Json::object([
        ("id", num(run.id as u64)),
        ("n_tables", num(run.n_tables as u64)),
        ("true_card", Json::Number(run.true_card)),
        ("exec_ns", duration_to_json(run.exec)),
        ("plan_ns", duration_to_json(run.plan)),
        ("subplans", num(run.subplans as u64)),
        ("p_error", f64_to_json_string(run.p_error)),
        ("q_errors", f64s(&run.q_errors)),
        ("sub_est_cards", f64s(&run.sub_est_cards)),
        ("sub_true_cards", f64s(&run.sub_true_cards)),
        ("result_rows", num(run.result_rows)),
        ("exec_stats", exec_stats_to_json(&run.exec_stats)),
        (
            "est_failures",
            Json::Array(run.est_failures.iter().map(est_failure_to_json).collect()),
        ),
        ("clamped_subplans", num(run.clamped_subplans)),
        ("fallback_subplans", num(run.fallback_subplans)),
        ("excluded_qerrors", num(run.excluded_qerrors)),
        (
            "failure",
            run.failure
                .as_ref()
                .map(query_failure_to_json)
                .unwrap_or(Json::Null),
        ),
    ])
}

/// Inverse of [`query_run_to_json`]; `None` on any missing or mistyped
/// field (the loader then treats the record as absent).
pub fn query_run_from_json(v: &Json) -> Option<QueryRun> {
    let f64s = |key: &str| -> Option<Vec<f64>> {
        v.get(key)?.as_array()?.iter().map(|x| x.as_f64()).collect()
    };
    Some(QueryRun {
        id: v.get("id").and_then(Json::as_usize)?,
        n_tables: v.get("n_tables").and_then(Json::as_usize)?,
        true_card: v.get("true_card").and_then(Json::as_f64)?,
        exec: v.get("exec_ns").and_then(duration_from_json)?,
        plan: v.get("plan_ns").and_then(duration_from_json)?,
        subplans: v.get("subplans").and_then(Json::as_usize)?,
        p_error: v.get("p_error").and_then(f64_from_json_string)?,
        q_errors: f64s("q_errors")?,
        sub_est_cards: f64s("sub_est_cards")?,
        sub_true_cards: f64s("sub_true_cards")?,
        result_rows: v.get("result_rows").and_then(Json::as_f64)? as u64,
        exec_stats: v.get("exec_stats").and_then(exec_stats_from_json)?,
        est_failures: v
            .get("est_failures")?
            .as_array()?
            .iter()
            .map(est_failure_from_json)
            .collect::<Option<Vec<_>>>()?,
        clamped_subplans: v.get("clamped_subplans").and_then(Json::as_f64)? as u64,
        fallback_subplans: v.get("fallback_subplans").and_then(Json::as_f64)? as u64,
        // Absent in checkpoints written before NaN exclusion existed;
        // default 0 keeps old files resumable.
        excluded_qerrors: v
            .get("excluded_qerrors")
            .and_then(Json::as_f64)
            .unwrap_or(0.0) as u64,
        failure: match v.get("failure")? {
            Json::Null => None,
            f => Some(query_failure_from_json(f)?),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run() -> QueryRun {
        QueryRun {
            id: 7,
            n_tables: 3,
            true_card: 123.0,
            exec: Duration::from_nanos(1_234_567),
            plan: Duration::from_micros(89),
            subplans: 5,
            p_error: 1.25,
            q_errors: vec![1.0, 2.5, 10.0],
            sub_est_cards: vec![4.0, 5.5, 1.0],
            sub_true_cards: vec![4.0, 2.0, 9.0],
            result_rows: 123,
            exec_stats: ExecStats {
                output_rows: 123,
                intermediate_rows: 456,
                build_rows: 7,
                probe_rows: 8,
                rows_gathered: 9,
                partitions_spilled: 1,
                peak_intermediate_bytes: 1 << 20,
            },
            est_failures: vec![
                EstFailure {
                    mask: 0b101,
                    error: EstimateError::Panicked {
                        message: "chaos: injected panic".into(),
                    },
                },
                EstFailure {
                    mask: 0b010,
                    error: EstimateError::NonFinite { value: f64::NAN },
                },
                EstFailure {
                    mask: 0b001,
                    error: EstimateError::TimedOut {
                        elapsed: Duration::from_millis(70),
                        budget: Duration::from_millis(50),
                    },
                },
            ],
            clamped_subplans: 2,
            fallback_subplans: 1,
            excluded_qerrors: 1,
            failure: None,
        }
    }

    fn assert_runs_equal(a: &QueryRun, b: &QueryRun) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.n_tables, b.n_tables);
        assert_eq!(a.true_card.to_bits(), b.true_card.to_bits());
        assert_eq!(a.exec, b.exec);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.subplans, b.subplans);
        assert_eq!(a.p_error.to_bits(), b.p_error.to_bits());
        assert_eq!(a.q_errors, b.q_errors);
        assert_eq!(a.sub_est_cards, b.sub_est_cards);
        assert_eq!(a.sub_true_cards, b.sub_true_cards);
        assert_eq!(a.result_rows, b.result_rows);
        assert_eq!(a.exec_stats, b.exec_stats);
        assert_eq!(a.est_failures, b.est_failures);
        assert_eq!(a.clamped_subplans, b.clamped_subplans);
        assert_eq!(a.fallback_subplans, b.fallback_subplans);
        assert_eq!(a.excluded_qerrors, b.excluded_qerrors);
        assert_eq!(a.failure, b.failure);
    }

    #[test]
    fn query_run_roundtrips_losslessly() {
        let run = sample_run();
        let back = query_run_from_json(&query_run_to_json(&run)).expect("roundtrip parses");
        assert_runs_equal(&run, &back);
    }

    #[test]
    fn failed_run_roundtrips() {
        let mut run = sample_run();
        run.p_error = f64::NAN;
        run.failure = Some(QueryFailure::ExecBudget {
            peak_bytes: 9_000_000,
            budget_bytes: 1_000_000,
        });
        let back = query_run_from_json(&query_run_to_json(&run)).expect("roundtrip parses");
        assert_runs_equal(&run, &back);
    }

    #[test]
    fn writer_and_loader_roundtrip_with_torn_tail() {
        let dir = std::env::temp_dir().join(format!(
            "cardbench-ckpt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        let mut w = CheckpointWriter::create(&path).unwrap();
        let a = sample_run();
        let mut b = sample_run();
        b.id = 8;
        w.write("PostgreSQL", "STATS-CEB", &a).unwrap();
        w.write("PostgreSQL", "STATS-CEB", &b).unwrap();
        drop(w);
        // Simulate a kill mid-write: append a torn (truncated) line.
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"method\":\"Postg").unwrap();
        drop(f);
        let recs = load_checkpoint(&path).unwrap();
        assert_eq!(recs.len(), 2, "torn tail is skipped, not fatal");
        assert_eq!(recs[0].method, "PostgreSQL");
        assert_eq!(recs[0].workload, "STATS-CEB");
        assert_runs_equal(&recs[0].run, &a);
        assert_runs_equal(&recs[1].run, &b);
        // Appending after the torn tail newline-terminates the fragment
        // first, so the new record parses and only the fragment is lost.
        let mut w = CheckpointWriter::append(&path).unwrap();
        let mut c = sample_run();
        c.id = 9;
        w.write("PostgreSQL", "STATS-CEB", &c).unwrap();
        drop(w);
        let recs = load_checkpoint(&path).unwrap();
        assert_eq!(recs.len(), 3);
        assert_runs_equal(&recs[2].run, &c);
        std::fs::remove_dir_all(&dir).ok();
    }
}
