//! Benchmark configuration and setup.

use cardbench_datagen::{imdb_catalog, stats_catalog, ImdbConfig, StatsConfig};
use cardbench_engine::Database;
use cardbench_estimators::lw::TrainingSet;
use cardbench_estimators::mscn::MscnConfig;
use cardbench_estimators::neurocard::NeuroCardConfig;
use cardbench_estimators::uae::UaeConfig;
use cardbench_ml::autoreg::ArConfig;
use cardbench_ml::gbdt::GbdtConfig;
use cardbench_sketch::SketchConfig;
use cardbench_workload::{job_light, stats_ceb, training_workload, Workload, WorkloadConfig};

use cardbench_estimators::lw::LwNnConfig;

/// Hyper-parameters of every estimator in one place.
#[derive(Debug, Clone)]
pub struct EstimatorSettings {
    /// Global seed.
    pub seed: u64,
    /// Bins per model column for the data-driven coders.
    pub max_bins: usize,
    /// UniSample per-table sample size (paper: 10^4).
    pub sample_size: usize,
    /// Wander-join walks per sub-plan estimate.
    pub wj_walks: usize,
    /// MSCN hyper-parameters.
    pub mscn: MscnConfig,
    /// LW-NN hyper-parameters.
    pub lw_nn: LwNnConfig,
    /// LW-XGB hyper-parameters.
    pub gbdt: GbdtConfig,
    /// UAE / UAE-Q hyper-parameters.
    pub uae: UaeConfig,
    /// NeuroCard hyper-parameters.
    pub neurocard: NeuroCardConfig,
    /// Sketch-estimator hyper-parameters (HLL precision, count-min
    /// shape, build shards).
    pub sketch: SketchConfig,
}

impl EstimatorSettings {
    /// Benchmark-scale settings.
    pub fn standard(seed: u64) -> EstimatorSettings {
        EstimatorSettings {
            seed,
            max_bins: 24,
            sample_size: 10_000,
            wj_walks: 600,
            mscn: MscnConfig {
                seed,
                embed: 64,
                hidden: 96,
                epochs: 40,
                ..MscnConfig::default()
            },
            lw_nn: LwNnConfig {
                seed,
                ..LwNnConfig::default()
            },
            gbdt: GbdtConfig::default(),
            uae: UaeConfig {
                seed,
                ..UaeConfig::default()
            },
            neurocard: NeuroCardConfig {
                seed,
                ar: ArConfig {
                    samples: 100,
                    ..ArConfig::default()
                },
                ..NeuroCardConfig::default()
            },
            sketch: SketchConfig::with_seed(seed),
        }
    }

    /// Down-scaled settings for unit/integration tests.
    pub fn fast(seed: u64) -> EstimatorSettings {
        EstimatorSettings {
            seed,
            max_bins: 16,
            sample_size: 500,
            wj_walks: 120,
            mscn: MscnConfig {
                epochs: 4,
                seed,
                ..MscnConfig::default()
            },
            lw_nn: LwNnConfig {
                epochs: 4,
                seed,
                ..LwNnConfig::default()
            },
            gbdt: GbdtConfig {
                rounds: 10,
                ..GbdtConfig::default()
            },
            uae: UaeConfig {
                epochs: 4,
                seed,
                ..UaeConfig::default()
            },
            neurocard: NeuroCardConfig {
                sample_rows: 1200,
                max_bins: 12,
                ar: ArConfig {
                    epochs: 1,
                    samples: 60,
                    ..ArConfig::default()
                },
                seed,
            },
            sketch: SketchConfig::with_seed(seed),
        }
    }
}

/// Top-level benchmark configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// STATS dataset generator config.
    pub stats: StatsConfig,
    /// IMDB dataset generator config.
    pub imdb: ImdbConfig,
    /// STATS-CEB workload config.
    pub stats_workload: WorkloadConfig,
    /// JOB-LIGHT workload config.
    pub imdb_workload: WorkloadConfig,
    /// Training queries per dataset for the query-driven methods
    /// (paper: 10^5; scaled with the data).
    pub training_queries: usize,
    /// Planning/estimation threads for the harness fan-out. `0` = auto:
    /// `CARDBENCH_THREADS`, then `RAYON_NUM_THREADS`, then all cores.
    pub threads: usize,
    /// Estimator hyper-parameters.
    pub settings: EstimatorSettings,
}

impl BenchConfig {
    /// Benchmark-scale configuration (minutes of wall time).
    pub fn standard(seed: u64) -> BenchConfig {
        BenchConfig {
            stats: StatsConfig {
                seed,
                ..StatsConfig::default()
            },
            imdb: ImdbConfig {
                seed,
                ..ImdbConfig::default()
            },
            stats_workload: WorkloadConfig::stats_ceb(seed ^ 0x51),
            imdb_workload: WorkloadConfig::job_light(seed ^ 0x1f),
            training_queries: 1500,
            threads: 0,
            settings: EstimatorSettings::standard(seed),
        }
    }

    /// Tiny configuration for tests (seconds of wall time).
    pub fn fast(seed: u64) -> BenchConfig {
        BenchConfig {
            stats: StatsConfig::tiny(seed),
            imdb: ImdbConfig::tiny(seed),
            stats_workload: WorkloadConfig {
                templates: 16,
                queries: 20,
                ..WorkloadConfig::stats_ceb(seed ^ 0x51)
            },
            imdb_workload: WorkloadConfig {
                templates: 8,
                queries: 12,
                ..WorkloadConfig::job_light(seed ^ 0x1f)
            },
            training_queries: 120,
            threads: 0,
            settings: EstimatorSettings::fast(seed),
        }
    }
}

/// A fully materialized benchmark: databases, workloads, training sets.
pub struct Bench {
    /// The STATS-profile database.
    pub stats_db: Database,
    /// The simplified-IMDB database.
    pub imdb_db: Database,
    /// STATS-CEB analog workload.
    pub stats_wl: Workload,
    /// JOB-LIGHT analog workload.
    pub imdb_wl: Workload,
    /// Training workload for query-driven methods on STATS.
    pub stats_train: TrainingSet,
    /// Training workload for query-driven methods on IMDB.
    pub imdb_train: TrainingSet,
    /// The configuration that built everything.
    pub config: BenchConfig,
}

impl Bench {
    /// Builds both databases and workloads.
    pub fn build(config: BenchConfig) -> Bench {
        let stats_db = Database::new(stats_catalog(&config.stats));
        let imdb_db = Database::new(imdb_catalog(&config.imdb));
        let stats_wl = stats_ceb(&stats_db, &config.stats_workload);
        let imdb_wl = job_light(&imdb_db, &config.imdb_workload);
        let (qs, cs) = training_workload(
            &stats_db,
            config.training_queries,
            config.stats_workload.max_tables,
            config.settings.seed ^ 0x7a,
        );
        let stats_train = TrainingSet {
            queries: qs,
            cards: cs,
        };
        let (qi, ci) = training_workload(
            &imdb_db,
            config.training_queries,
            config.imdb_workload.max_tables,
            config.settings.seed ^ 0x7b,
        );
        let imdb_train = TrainingSet {
            queries: qi,
            cards: ci,
        };
        Bench {
            stats_db,
            imdb_db,
            stats_wl,
            imdb_wl,
            stats_train,
            imdb_train,
            config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_bench_builds() {
        let b = Bench::build(BenchConfig::fast(3));
        assert_eq!(b.stats_db.catalog().table_count(), 8);
        assert_eq!(b.imdb_db.catalog().table_count(), 6);
        assert_eq!(b.stats_wl.queries.len(), 20);
        assert_eq!(b.imdb_wl.queries.len(), 12);
        assert_eq!(b.stats_train.queries.len(), 120);
    }
}
