//! The harness's fault-tolerance layer: estimator sandboxing, the typed
//! failure taxonomy, and per-run guard-rail options.
//!
//! Every `CardEst::estimate` call the harness makes goes through
//! [`guarded_estimate`]: the call runs under `std::panic::catch_unwind`
//! (with a quiet panic hook so injected/inherent estimator panics don't
//! spray backtraces over benchmark output) and its wall time is checked
//! against an optional budget. Misbehaviour becomes a typed
//! [`EstimateError`] instead of aborting hours of benchmark work:
//!
//! - **hard** failures ([`EstimateError::Panicked`],
//!   [`EstimateError::TimedOut`]) produce no usable value; the caller
//!   degrades to the PostgreSQL baseline estimate for that sub-plan;
//! - **soft** failures ([`EstimateError::NonFinite`],
//!   [`EstimateError::Degenerate`]) carry the bad value, which the
//!   engine's `clamp_row_est` maps into `[1, cross-product bound]` at the
//!   injection point.
//!
//! Timeout semantics are cooperative: safe Rust cannot kill a running
//! thread, so the estimate runs to completion and is *then* discarded if
//! it overran the budget. A hung estimator therefore still stalls its
//! worker (no worse than before), but a slow one can no longer poison the
//! run with an estimate the paper's setup would have timed out.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Once;
use std::time::{Duration, Instant};

use cardbench_engine::Database;
use cardbench_estimators::CardEst;
use cardbench_query::SubPlanQuery;

/// Why one sub-plan estimate was rejected.
#[derive(Debug, Clone)]
pub enum EstimateError {
    /// `estimate` panicked; the payload message is kept for attribution.
    Panicked {
        /// Panic payload rendered to text.
        message: String,
    },
    /// The call finished but took longer than the per-estimate budget.
    TimedOut {
        /// Observed wall time.
        elapsed: Duration,
        /// The configured budget.
        budget: Duration,
    },
    /// The estimator returned NaN or ±infinity.
    NonFinite {
        /// The offending value.
        value: f64,
    },
    /// The estimator returned a negative or subnormal row count (no
    /// usable magnitude). Zero is *not* degenerate: an empty estimate is
    /// legal and clamps to 1.0 exactly as in PostgreSQL.
    Degenerate {
        /// The offending value.
        value: f64,
    },
    /// The serving layer's circuit breaker was open: the estimator call
    /// was never made and the caller degrades to the baseline
    /// immediately. Distinguished from [`EstimateError::TimedOut`] /
    /// [`EstimateError::Panicked`] ("failed, then degraded") because a
    /// shorted slot never paid the doomed call's latency.
    Shorted,
    /// The request blew its end-to-end deadline before this estimate
    /// started (e.g. while queued behind other sessions); it was failed
    /// fast instead of consuming an estimator slot.
    DeadlineExceeded {
        /// How far past the deadline the request was when rejected.
        late: Duration,
    },
}

impl EstimateError {
    /// Stable kind tag (checkpoint format and report cells).
    pub fn kind(&self) -> &'static str {
        match self {
            EstimateError::Panicked { .. } => "panicked",
            EstimateError::TimedOut { .. } => "timed_out",
            EstimateError::NonFinite { .. } => "non_finite",
            EstimateError::Degenerate { .. } => "degenerate",
            EstimateError::Shorted => "shorted",
            EstimateError::DeadlineExceeded { .. } => "deadline_exceeded",
        }
    }

    /// True when no usable value exists and the caller must fall back to
    /// the baseline estimate (panic/timeout/breaker-short/blown
    /// deadline). Soft failures carry a value the clamp can sanitize.
    pub fn is_hard(&self) -> bool {
        matches!(
            self,
            EstimateError::Panicked { .. }
                | EstimateError::TimedOut { .. }
                | EstimateError::Shorted
                | EstimateError::DeadlineExceeded { .. }
        )
    }

    /// True for transient faults worth retrying when deadline budget
    /// remains: the call was slow, not wrong, so a bounded retry with
    /// backoff can still land a usable value. Panics, breaker shorts,
    /// and value faults are not transient — repeating them buys nothing.
    pub fn is_transient(&self) -> bool {
        matches!(self, EstimateError::TimedOut { .. })
    }
}

impl std::fmt::Display for EstimateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimateError::Panicked { message } => write!(f, "panicked: {message}"),
            EstimateError::TimedOut { elapsed, budget } => {
                write!(f, "timed out ({elapsed:?} > {budget:?})")
            }
            EstimateError::NonFinite { value } => write!(f, "non-finite estimate ({value})"),
            EstimateError::Degenerate { value } => write!(f, "degenerate estimate ({value})"),
            EstimateError::Shorted => {
                write!(f, "circuit breaker open: estimator call skipped")
            }
            EstimateError::DeadlineExceeded { late } => {
                write!(f, "deadline exceeded before estimation ({late:?} late)")
            }
        }
    }
}

impl std::error::Error for EstimateError {}

// Manual PartialEq: NaN-valued errors must still compare equal to
// themselves (resume-equality tests diff failure records), so values
// compare by bit pattern.
impl PartialEq for EstimateError {
    fn eq(&self, other: &EstimateError) -> bool {
        match (self, other) {
            (EstimateError::Panicked { message: a }, EstimateError::Panicked { message: b }) => {
                a == b
            }
            (
                EstimateError::TimedOut {
                    elapsed: ea,
                    budget: ba,
                },
                EstimateError::TimedOut {
                    elapsed: eb,
                    budget: bb,
                },
            ) => ea == eb && ba == bb,
            (EstimateError::NonFinite { value: a }, EstimateError::NonFinite { value: b })
            | (EstimateError::Degenerate { value: a }, EstimateError::Degenerate { value: b }) => {
                a.to_bits() == b.to_bits()
            }
            (EstimateError::Shorted, EstimateError::Shorted) => true,
            (
                EstimateError::DeadlineExceeded { late: a },
                EstimateError::DeadlineExceeded { late: b },
            ) => a == b,
            _ => false,
        }
    }
}

/// One recorded estimate failure within a query: which sub-plan (by
/// table mask within the query) and what went wrong.
#[derive(Debug, Clone, PartialEq)]
pub struct EstFailure {
    /// Sub-plan table mask (bits index the query's table list).
    pub mask: u64,
    /// The failure.
    pub error: EstimateError,
}

/// A whole-query failure: the query produced no executed result.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryFailure {
    /// The query did not bind against the catalog.
    Bind {
        /// Binder error text.
        message: String,
    },
    /// The true-cardinality oracle failed on a sub-plan.
    Truth {
        /// Oracle error text.
        message: String,
    },
    /// Execution aborted: intermediate bytes exceeded the memory budget.
    ExecBudget {
        /// Live bytes when the budget tripped.
        peak_bytes: u64,
        /// The configured budget.
        budget_bytes: u64,
    },
}

impl QueryFailure {
    /// Stable kind tag (checkpoint format and report cells).
    pub fn kind(&self) -> &'static str {
        match self {
            QueryFailure::Bind { .. } => "bind",
            QueryFailure::Truth { .. } => "truth",
            QueryFailure::ExecBudget { .. } => "exec_budget",
        }
    }
}

impl std::fmt::Display for QueryFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryFailure::Bind { message } => write!(f, "bind failed: {message}"),
            QueryFailure::Truth { message } => write!(f, "true-cardinality failed: {message}"),
            QueryFailure::ExecBudget {
                peak_bytes,
                budget_bytes,
            } => write!(
                f,
                "memory budget exceeded ({peak_bytes}B > {budget_bytes}B)"
            ),
        }
    }
}

/// Guard rails and recovery knobs for one workload run.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Planning/estimation threads (`0` = auto, as in
    /// [`crate::run_workload_with_threads`]).
    pub threads: usize,
    /// Per-sub-plan-estimate wall-clock budget (`None` = unlimited).
    pub timeout: Option<Duration>,
    /// Executor intermediate-bytes budget per query (`None` = unlimited).
    pub mem_budget_bytes: Option<u64>,
    /// JSONL checkpoint path: completed per-query records are streamed
    /// here as they finish.
    pub checkpoint: Option<PathBuf>,
    /// With a checkpoint path set: load existing records and skip their
    /// (method, workload, query) triples instead of recomputing them.
    /// Without this flag an existing checkpoint file is truncated.
    pub resume: bool,
}

impl RunOptions {
    /// Options matching the historical `run_workload_with_threads`
    /// behaviour: no budgets, no checkpointing.
    pub fn with_threads(threads: usize) -> RunOptions {
        RunOptions {
            threads,
            ..RunOptions::default()
        }
    }
}

/// The effective per-estimate wall-clock budget once an end-to-end
/// request deadline is in play: the tighter of the configured
/// per-estimate `timeout` and the time remaining until `deadline` at
/// `now`. With no deadline the configured budget passes through
/// unchanged (so deadline-free runs stay bit-identical to the
/// historical path); an already-expired deadline yields `Some(ZERO)` —
/// every subsequent estimate times out instead of silently overrunning
/// the request.
pub fn deadline_budget(
    timeout: Option<Duration>,
    deadline: Option<Instant>,
    now: Instant,
) -> Option<Duration> {
    let Some(deadline) = deadline else {
        return timeout;
    };
    let remaining = deadline.saturating_duration_since(now);
    Some(match timeout {
        Some(budget) => budget.min(remaining),
        None => remaining,
    })
}

thread_local! {
    /// Set while this thread is inside a sandboxed estimate: the process
    /// panic hook stays quiet for expected (caught) estimator panics.
    static SANDBOXED: Cell<bool> = const { Cell::new(false) };
}

static QUIET_HOOK: Once = Once::new();

/// Installs (once per process) a panic hook that suppresses output for
/// panics unwinding out of a sandboxed estimate and defers to the
/// previous hook for everything else.
fn install_quiet_panic_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if SANDBOXED.with(|c| c.get()) {
                return;
            }
            prev(info);
        }));
    });
}

/// Marks the current thread as about to raise an *expected* panic (fault
/// injection): the process panic hook stays quiet for it. The serving
/// layer's chaos injector calls this before deliberately killing the
/// drainer thread — the panic is the test, not noise. The flag is
/// thread-local and the panicking thread dies with it.
pub fn expect_panic_quietly() {
    install_quiet_panic_hook();
    SANDBOXED.with(|c| c.set(true));
}

/// Renders a panic payload (the `Box<dyn Any>` from `catch_unwind`).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one sandboxed, budgeted estimate. Returns the estimator's value
/// or a typed error, plus the observed wall time (always charged to
/// planning time — a panicking or slow estimator still spent it).
pub fn guarded_estimate(
    est: &dyn CardEst,
    db: &Database,
    sub: &SubPlanQuery,
    timeout: Option<Duration>,
) -> (Result<f64, EstimateError>, Duration) {
    install_quiet_panic_hook();
    let sp = cardbench_obs::span_with("estimate", "plan", || est.name().to_string());
    SANDBOXED.with(|c| c.set(true));
    let t0 = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| est.estimate(db, sub)));
    let elapsed = t0.elapsed();
    SANDBOXED.with(|c| c.set(false));
    drop(sp);
    let result = match outcome {
        Err(payload) => Err(EstimateError::Panicked {
            message: panic_message(payload),
        }),
        Ok(_) if timeout.is_some_and(|budget| elapsed > budget) => Err(EstimateError::TimedOut {
            elapsed,
            budget: timeout.unwrap_or_default(),
        }),
        Ok(v) if !v.is_finite() => Err(EstimateError::NonFinite { value: v }),
        Ok(v) if v < 0.0 || (v > 0.0 && !v.is_normal()) => {
            Err(EstimateError::Degenerate { value: v })
        }
        Ok(v) => Ok(v),
    };
    cardbench_obs::observe_secs(
        "cardbench_estimate_latency_seconds",
        &[("method", est.name())],
        elapsed.as_secs_f64(),
    );
    if let Err(e) = &result {
        cardbench_obs::counter_add(
            "cardbench_est_failures_total",
            &[("method", est.name()), ("kind", e.kind())],
            1,
        );
    }
    (result, elapsed)
}

/// Runs one sandboxed, budgeted *batched* estimate over a whole sub-plan
/// set ([`CardEst::estimate_batch`]).
///
/// `Some(results)` mirrors per-sub-plan [`guarded_estimate`] outcomes —
/// one `(value-or-soft-error, duration)` per sub-plan, with the batch's
/// wall time split evenly across sub-plans (batch inference has no
/// per-sub-plan attribution) and the same NonFinite/Degenerate value
/// checks applied per value.
///
/// `None` means the batch path is unusable for this query — the
/// estimator panicked mid-batch, returned the wrong number of values, or
/// overran the *aggregate* budget (per-sub-plan budget × batch size) —
/// and the caller must degrade to guarded per-sub-plan calls, which
/// re-establish exact per-sub-plan fault attribution (panic messages,
/// per-call timeouts). No per-sub-plan metrics are emitted in that case;
/// the per-sub-plan path emits its own.
pub fn guarded_estimate_batch(
    est: &dyn CardEst,
    db: &Database,
    subs: &[SubPlanQuery],
    timeout: Option<Duration>,
) -> Option<Vec<(Result<f64, EstimateError>, Duration)>> {
    if subs.is_empty() {
        return Some(Vec::new());
    }
    install_quiet_panic_hook();
    let sp = cardbench_obs::span_with("subplan_batch", "plan", || {
        format!("{} x{}", est.name(), subs.len())
    });
    SANDBOXED.with(|c| c.set(true));
    let t0 = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| est.estimate_batch(db, subs)));
    let elapsed = t0.elapsed();
    SANDBOXED.with(|c| c.set(false));
    drop(sp);
    let values = match outcome {
        Ok(v) if v.len() == subs.len() => v,
        // Panic or wrong arity: no usable per-sub-plan attribution.
        _ => return None,
    };
    // Aggregate budget check (overflow of the multiplied budget means it
    // is effectively unlimited).
    if timeout.is_some_and(|budget| {
        budget
            .checked_mul(subs.len() as u32)
            .is_some_and(|agg| elapsed > agg)
    }) {
        return None;
    }
    let per_sub = elapsed / subs.len() as u32;
    let results = values
        .into_iter()
        .map(|v| {
            let result = if !v.is_finite() {
                Err(EstimateError::NonFinite { value: v })
            } else if v < 0.0 || (v > 0.0 && !v.is_normal()) {
                Err(EstimateError::Degenerate { value: v })
            } else {
                Ok(v)
            };
            cardbench_obs::observe_secs(
                "cardbench_estimate_latency_seconds",
                &[("method", est.name())],
                per_sub.as_secs_f64(),
            );
            if let Err(e) = &result {
                cardbench_obs::counter_add(
                    "cardbench_est_failures_total",
                    &[("method", est.name()), ("kind", e.kind())],
                    1,
                );
            }
            (result, per_sub)
        })
        .collect();
    Some(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardbench_query::{JoinQuery, TableMask};
    use cardbench_storage::{Catalog, Column, ColumnDef, ColumnKind, Table, TableSchema};

    struct FixedEst(f64);
    impl CardEst for FixedEst {
        fn name(&self) -> &'static str {
            "Fixed"
        }
        fn estimate(&self, _db: &Database, _sub: &SubPlanQuery) -> f64 {
            self.0
        }
    }

    struct PanicEst;
    impl CardEst for PanicEst {
        fn name(&self) -> &'static str {
            "Panic"
        }
        fn estimate(&self, _db: &Database, _sub: &SubPlanQuery) -> f64 {
            panic!("boom")
        }
    }

    struct SlowEst;
    impl CardEst for SlowEst {
        fn name(&self) -> &'static str {
            "Slow"
        }
        fn estimate(&self, _db: &Database, _sub: &SubPlanQuery) -> f64 {
            std::thread::sleep(Duration::from_millis(20));
            7.0
        }
    }

    fn fixture() -> (Database, SubPlanQuery) {
        let mut cat = Catalog::new();
        cat.add_table(
            Table::from_columns(
                TableSchema::new("t", vec![ColumnDef::new("id", ColumnKind::PrimaryKey)]),
                vec![Column::from_values(vec![1, 2, 3])],
            )
            .unwrap(),
        );
        let sub = SubPlanQuery {
            mask: TableMask::single(0),
            query: JoinQuery::single("t", vec![]),
        };
        (Database::new(cat), sub)
    }

    #[test]
    fn clean_estimates_pass_through() {
        let (db, sub) = fixture();
        let (r, dt) = guarded_estimate(&FixedEst(42.0), &db, &sub, None);
        assert_eq!(r, Ok(42.0));
        assert!(dt < Duration::from_secs(1));
        // Zero is a legal estimate, not a fault.
        let (r, _) = guarded_estimate(&FixedEst(0.0), &db, &sub, None);
        assert_eq!(r, Ok(0.0));
    }

    #[test]
    fn panic_is_caught_and_typed() {
        let (db, sub) = fixture();
        let (r, _) = guarded_estimate(&PanicEst, &db, &sub, None);
        let err = r.expect_err("panic must be captured");
        assert_eq!(err.kind(), "panicked");
        assert!(err.is_hard());
        assert!(err.to_string().contains("boom"));
    }

    #[test]
    fn overrun_is_timed_out() {
        let (db, sub) = fixture();
        let (r, dt) = guarded_estimate(&SlowEst, &db, &sub, Some(Duration::from_millis(1)));
        let err = r.expect_err("overrun must be rejected");
        assert_eq!(err.kind(), "timed_out");
        assert!(err.is_hard());
        assert!(dt >= Duration::from_millis(20));
        // A generous budget accepts the same estimator.
        let (r, _) = guarded_estimate(&SlowEst, &db, &sub, Some(Duration::from_secs(30)));
        assert_eq!(r, Ok(7.0));
    }

    #[test]
    fn bad_values_are_soft_failures() {
        let (db, sub) = fixture();
        for (v, kind) in [
            (f64::NAN, "non_finite"),
            (f64::INFINITY, "non_finite"),
            (f64::NEG_INFINITY, "non_finite"),
            (-3.0, "degenerate"),
            (f64::MIN_POSITIVE / 4.0, "degenerate"),
        ] {
            let (r, _) = guarded_estimate(&FixedEst(v), &db, &sub, None);
            let err = r.expect_err("bad value must be typed");
            assert_eq!(err.kind(), kind, "value {v}");
            assert!(!err.is_hard(), "value faults are soft");
        }
    }

    #[test]
    fn nan_failures_compare_equal() {
        let a = EstimateError::NonFinite { value: f64::NAN };
        let b = EstimateError::NonFinite { value: f64::NAN };
        assert_eq!(a, b);
        assert_ne!(a, EstimateError::NonFinite { value: 1.0 });
        assert_ne!(a, EstimateError::Degenerate { value: f64::NAN });
    }

    #[test]
    fn serving_failures_are_hard_and_typed() {
        let shorted = EstimateError::Shorted;
        assert_eq!(shorted.kind(), "shorted");
        assert!(shorted.is_hard());
        assert!(!shorted.is_transient());
        assert_eq!(shorted, EstimateError::Shorted);
        let late = EstimateError::DeadlineExceeded {
            late: Duration::from_millis(3),
        };
        assert_eq!(late.kind(), "deadline_exceeded");
        assert!(late.is_hard());
        assert!(!late.is_transient());
        assert_ne!(late, shorted);
        // Only timeouts are worth a retry.
        assert!(EstimateError::TimedOut {
            elapsed: Duration::from_millis(2),
            budget: Duration::from_millis(1),
        }
        .is_transient());
    }

    #[test]
    fn deadline_budget_takes_the_tighter_bound() {
        let now = Instant::now();
        let timeout = Some(Duration::from_millis(100));
        // No deadline: the configured budget passes through untouched.
        assert_eq!(deadline_budget(timeout, None, now), timeout);
        assert_eq!(deadline_budget(None, None, now), None);
        // A far deadline leaves the per-call budget in charge.
        let far = now + Duration::from_secs(10);
        assert_eq!(deadline_budget(timeout, Some(far), now), timeout);
        // A near deadline tightens it.
        let near = now + Duration::from_millis(7);
        assert_eq!(
            deadline_budget(timeout, Some(near), now),
            Some(Duration::from_millis(7))
        );
        // No per-call budget: the deadline alone bounds the call.
        assert_eq!(
            deadline_budget(None, Some(near), now),
            Some(Duration::from_millis(7))
        );
        // An expired deadline means a zero budget, not a free pass.
        let past = now - Duration::from_millis(1);
        assert_eq!(deadline_budget(None, Some(past), now), Some(Duration::ZERO));
    }

    /// Returns one value per sub-plan from a fixed list (cycling).
    struct ListEst(Vec<f64>);
    impl CardEst for ListEst {
        fn name(&self) -> &'static str {
            "List"
        }
        fn estimate(&self, _db: &Database, _sub: &SubPlanQuery) -> f64 {
            self.0[0]
        }
        fn estimate_batch(&self, _db: &Database, subs: &[SubPlanQuery]) -> Vec<f64> {
            (0..subs.len()).map(|i| self.0[i % self.0.len()]).collect()
        }
    }

    /// Misbehaving batch: returns the wrong number of values.
    struct ShortBatchEst;
    impl CardEst for ShortBatchEst {
        fn name(&self) -> &'static str {
            "ShortBatch"
        }
        fn estimate(&self, _db: &Database, _sub: &SubPlanQuery) -> f64 {
            1.0
        }
        fn estimate_batch(&self, _db: &Database, _subs: &[SubPlanQuery]) -> Vec<f64> {
            vec![1.0]
        }
    }

    #[test]
    fn batch_mirrors_per_sub_outcomes() {
        let (db, sub) = fixture();
        let subs = vec![sub.clone(), sub.clone(), sub.clone(), sub.clone()];
        let est = ListEst(vec![42.0, f64::NAN, -3.0, 0.0]);
        let results = guarded_estimate_batch(&est, &db, &subs, None).expect("clean batch");
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].0, Ok(42.0));
        assert_eq!(results[1].0.as_ref().unwrap_err().kind(), "non_finite");
        assert_eq!(results[2].0.as_ref().unwrap_err().kind(), "degenerate");
        assert_eq!(results[3].0, Ok(0.0), "zero is legal");
    }

    #[test]
    fn batch_panic_degrades_to_none() {
        let (db, sub) = fixture();
        let subs = vec![sub.clone(), sub.clone()];
        assert!(guarded_estimate_batch(&PanicEst, &db, &subs, None).is_none());
        // The sandbox flag is clear again afterwards.
        let r = guarded_estimate_batch(&ListEst(vec![1.0]), &db, &subs, None);
        assert!(r.is_some());
    }

    #[test]
    fn batch_wrong_arity_degrades_to_none() {
        let (db, sub) = fixture();
        let subs = vec![sub.clone(), sub.clone()];
        assert!(guarded_estimate_batch(&ShortBatchEst, &db, &subs, None).is_none());
    }

    #[test]
    fn batch_aggregate_overrun_degrades_to_none() {
        let (db, sub) = fixture();
        let subs = vec![sub.clone()];
        // SlowEst's default batch takes ≥20ms for one sub: over a 1ms
        // aggregate budget, under a generous one.
        assert!(
            guarded_estimate_batch(&SlowEst, &db, &subs, Some(Duration::from_millis(1))).is_none()
        );
        let r = guarded_estimate_batch(&SlowEst, &db, &subs, Some(Duration::from_secs(30)));
        assert_eq!(r.expect("fits budget")[0].0, Ok(7.0));
    }

    #[test]
    fn empty_batch_is_trivially_ok() {
        let (db, _) = fixture();
        let r = guarded_estimate_batch(&PanicEst, &db, &[], None);
        assert_eq!(r, Some(Vec::new()));
    }

    #[test]
    fn sandbox_survives_repeated_panics() {
        let (db, sub) = fixture();
        for _ in 0..50 {
            let (r, _) = guarded_estimate(&PanicEst, &db, &sub, None);
            assert!(r.is_err());
        }
        // The sandbox flag is clear again: a clean call still works.
        let (r, _) = guarded_estimate(&FixedEst(1.0), &db, &sub, None);
        assert_eq!(r, Ok(1.0));
    }
}
