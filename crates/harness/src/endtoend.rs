//! Per-query end-to-end runs: inject estimates for the sub-plan space,
//! optimize, execute for real, and record times and metrics.
//!
//! The run is two-phased. Phase 1 — sub-plan enumeration, estimator
//! inference, true-cardinality lookups, plan choice, and metric
//! computation — is embarrassingly parallel across queries and fans out
//! over a scoped thread pool ([`cardbench_support::par`]). Phase 2 — the
//! timed plan executions — stays strictly sequential so wall-clock
//! numbers are never polluted by sibling queries competing for cores.
//! Estimation latency is still timed per call inside phase 1: each
//! `estimate` is timed around its own call, which parallelism does not
//! reorder or interleave (one sub-plan's inference runs start-to-finish
//! on one thread).

use std::time::{Duration, Instant};

use cardbench_engine::{
    execute_with, optimize, CardMap, CostModel, Database, ExecScratch, ExecStats, PhysicalPlan,
    TrueCardService,
};
use cardbench_estimators::{CardEst, EstimatorKind};
use cardbench_metrics::{p_error, q_error};
use cardbench_query::{connected_subsets, BoundQuery, SubPlanQuery};
use cardbench_support::par;
use cardbench_workload::Workload;

/// Result of one query under one estimator.
#[derive(Debug, Clone)]
pub struct QueryRun {
    /// Workload query id.
    pub id: usize,
    /// Number of joined tables.
    pub n_tables: usize,
    /// True result cardinality.
    pub true_card: f64,
    /// Wall-clock execution time of the chosen plan.
    pub exec: Duration,
    /// Planning time: the summed inference latency over the sub-plan
    /// space (the component the estimator controls).
    pub plan: Duration,
    /// Number of sub-plan queries estimated.
    pub subplans: usize,
    /// P-Error of the chosen plan.
    pub p_error: f64,
    /// Q-Errors over all sub-plan queries.
    pub q_errors: Vec<f64>,
    /// Estimated cardinality per sub-plan, in `connected_subsets` order
    /// (exposed so determinism across thread counts is checkable).
    pub sub_est_cards: Vec<f64>,
    /// True cardinality per sub-plan, in the same order.
    pub sub_true_cards: Vec<f64>,
    /// COUNT(*) result of the executed plan.
    pub result_rows: u64,
    /// Operator-level execution counters of the chosen plan (identical
    /// across the warm-up and every timed repeat).
    pub exec_stats: ExecStats,
}

/// All queries of one workload under one estimator.
#[derive(Debug, Clone)]
pub struct MethodRun {
    /// Which estimator.
    pub kind: EstimatorKind,
    /// Training wall time.
    pub train_time: Duration,
    /// Model size in bytes.
    pub model_size: usize,
    /// Per-query results in workload order.
    pub queries: Vec<QueryRun>,
}

impl MethodRun {
    /// Total execution time.
    pub fn exec_total(&self) -> Duration {
        self.queries.iter().map(|q| q.exec).sum()
    }

    /// Total planning (inference) time.
    pub fn plan_total(&self) -> Duration {
        self.queries.iter().map(|q| q.plan).sum()
    }

    /// End-to-end time (execution + planning).
    pub fn e2e_total(&self) -> Duration {
        self.exec_total() + self.plan_total()
    }

    /// Mean inference latency per sub-plan estimate.
    pub fn avg_inference(&self) -> Duration {
        let n: usize = self.queries.iter().map(|q| q.subplans).sum();
        if n == 0 {
            Duration::ZERO
        } else {
            self.plan_total() / n as u32
        }
    }

    /// All sub-plan Q-Errors.
    pub fn all_q_errors(&self) -> Vec<f64> {
        self.queries
            .iter()
            .flat_map(|q| q.q_errors.iter().copied())
            .collect()
    }

    /// All per-query P-Errors.
    pub fn all_p_errors(&self) -> Vec<f64> {
        self.queries.iter().map(|q| q.p_error).collect()
    }

    /// Operator counters aggregated over all queries: additive counters
    /// sum; `peak_intermediate_bytes` is the max over queries.
    pub fn exec_stats_total(&self) -> ExecStats {
        let mut total = ExecStats::default();
        for q in &self.queries {
            let s = &q.exec_stats;
            total.output_rows += s.output_rows;
            total.intermediate_rows += s.intermediate_rows;
            total.build_rows += s.build_rows;
            total.probe_rows += s.probe_rows;
            total.rows_gathered += s.rows_gathered;
            total.partitions_spilled += s.partitions_spilled;
            total.peak_intermediate_bytes =
                total.peak_intermediate_bytes.max(s.peak_intermediate_bytes);
        }
        total
    }

    /// Improvement over a baseline end-to-end time, in percent
    /// (positive = faster than baseline).
    pub fn improvement_over(&self, baseline: Duration) -> f64 {
        let own = self.e2e_total();
        if baseline.is_zero() {
            return 0.0;
        }
        (baseline.as_secs_f64() - own.as_secs_f64()) / baseline.as_secs_f64() * 100.0
    }
}

/// One query after phase 1: everything except timed execution.
struct PlannedQuery {
    id: usize,
    n_tables: usize,
    true_card: f64,
    plan_time: Duration,
    subplans: usize,
    p_error: f64,
    q_errors: Vec<f64>,
    sub_est_cards: Vec<f64>,
    sub_true_cards: Vec<f64>,
    bound: BoundQuery,
    plan: PhysicalPlan,
}

/// Runs every workload query through the optimizer with the estimator's
/// injected cardinalities and executes the chosen plans.
///
/// Planning/estimation parallelism defaults to the environment
/// ([`par::max_threads`]: `CARDBENCH_THREADS`, then `RAYON_NUM_THREADS`,
/// then all cores); use [`run_workload_with_threads`] for an explicit
/// count. Results are identical for every thread count.
pub fn run_workload(
    db: &Database,
    wl: &Workload,
    est: &dyn CardEst,
    truth: &TrueCardService,
    cost: &CostModel,
) -> Vec<QueryRun> {
    run_workload_with_threads(db, wl, est, truth, cost, 0)
}

/// [`run_workload`] with an explicit planning thread count (`0` = auto).
///
/// Phase 1 fans queries out over `threads` workers: each worker owns a
/// query end-to-end through sub-plan enumeration, inference (timed per
/// call), true-cardinality lookups, plan choice, and Q-/P-Error. Phase 2
/// then executes the chosen plans one at a time — warm-up plus median of
/// three timed runs — so execution wall-clock is measured on an otherwise
/// idle process, exactly as in the sequential harness.
pub fn run_workload_with_threads(
    db: &Database,
    wl: &Workload,
    est: &dyn CardEst,
    truth: &TrueCardService,
    cost: &CostModel,
    threads: usize,
) -> Vec<QueryRun> {
    let threads = par::resolve_threads(threads);

    // Phase 1: plan every query (parallel, order-preserving).
    let planned: Vec<PlannedQuery> = par::map(&wl.queries, threads, |_, wq| {
        let query = &wq.query;
        let bound = BoundQuery::bind(query, db.catalog()).expect("workload query binds");
        let masks = connected_subsets(query);
        let mut est_cards = CardMap::new();
        let mut true_cards = CardMap::new();
        let mut plan_time = Duration::ZERO;
        let mut q_errors = Vec::with_capacity(masks.len());
        let mut sub_est_cards = Vec::with_capacity(masks.len());
        let mut sub_true_cards = Vec::with_capacity(masks.len());
        for &mask in &masks {
            let sp = SubPlanQuery::project(query, mask);
            let t0 = Instant::now();
            let e = est.estimate(db, &sp);
            let mut dt = t0.elapsed();
            if est.is_oracle() {
                // The paper injects precomputed true cardinalities; time a
                // warm (cached) call instead of the first computation.
                let t1 = Instant::now();
                let _ = est.estimate(db, &sp);
                dt = t1.elapsed();
            }
            plan_time += dt;
            let t = truth
                .cardinality(db, &sp.query)
                .expect("true cardinality computable");
            est_cards.insert(mask, e);
            true_cards.insert(mask, t);
            q_errors.push(q_error(e, t));
            sub_est_cards.push(e);
            sub_true_cards.push(t);
        }
        let plan = optimize(query, &bound, db, &est_cards, cost);
        let pe = p_error(db, cost, query, &bound, &est_cards, &true_cards);
        PlannedQuery {
            id: wq.id,
            n_tables: query.table_count(),
            true_card: wq.true_card,
            plan_time,
            subplans: masks.len(),
            p_error: pe,
            q_errors,
            sub_est_cards,
            sub_true_cards,
            bound,
            plan,
        }
    });

    // Phase 2: execute the chosen plans (sequential, timed). One scratch
    // arena serves every execution, so only the very first run of the
    // phase pays buffer allocations; results are bit-identical to fresh
    // buffers (asserted by the executor differential property test).
    let mut scratch = ExecScratch::new();
    planned
        .into_iter()
        .map(|p| {
            // Warm run first, then median of three timed runs: wall-clock
            // at millisecond scale is dominated by allocator/cache state
            // and scheduling noise, which would otherwise punish whichever
            // method happens to hit a cold or contended moment.
            let (rows, stats) = execute_with(&p.plan, &p.bound, db, &mut scratch);
            let mut times = [Duration::ZERO; 3];
            for t in &mut times {
                let t0 = Instant::now();
                let (rows2, stats2) = execute_with(&p.plan, &p.bound, db, &mut scratch);
                *t = t0.elapsed();
                debug_assert_eq!(rows, rows2);
                debug_assert_eq!(stats, stats2);
            }
            times.sort();
            QueryRun {
                id: p.id,
                n_tables: p.n_tables,
                true_card: p.true_card,
                exec: times[1],
                plan: p.plan_time,
                subplans: p.subplans,
                p_error: p.p_error,
                q_errors: p.q_errors,
                sub_est_cards: p.sub_est_cards,
                sub_true_cards: p.sub_true_cards,
                result_rows: rows,
                exec_stats: stats,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Bench, BenchConfig};
    use crate::factory::build_estimator;

    #[test]
    fn truecard_runs_and_counts_match() {
        let b = Bench::build(BenchConfig::fast(2));
        let built = build_estimator(
            EstimatorKind::TrueCard,
            &b.stats_db,
            &b.stats_train,
            &b.config.settings,
        );
        let truth = TrueCardService::new();
        let runs = run_workload(
            &b.stats_db,
            &b.stats_wl,
            built.est.as_ref(),
            &truth,
            &CostModel::default(),
        );
        assert_eq!(runs.len(), b.stats_wl.queries.len());
        for (run, wq) in runs.iter().zip(&b.stats_wl.queries) {
            // Executed COUNT(*) must equal the generator's truth.
            assert_eq!(run.result_rows as f64, wq.true_card, "Q{}", run.id);
            // Oracle Q-Errors are exactly 1.
            for &qe in &run.q_errors {
                assert!((qe - 1.0).abs() < 1e-9);
            }
            // Oracle P-Error is exactly 1.
            assert!((run.p_error - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn postgres_baseline_q_errors_ge_one() {
        let b = Bench::build(BenchConfig::fast(2));
        let built = build_estimator(
            EstimatorKind::Postgres,
            &b.stats_db,
            &b.stats_train,
            &b.config.settings,
        );
        let truth = TrueCardService::new();
        let runs = run_workload(
            &b.stats_db,
            &b.stats_wl,
            built.est.as_ref(),
            &truth,
            &CostModel::default(),
        );
        for run in &runs {
            for &qe in &run.q_errors {
                assert!(qe >= 1.0);
            }
            assert!(run.p_error >= 1.0 - 1e-9);
            // Plans always produce the true count, regardless of
            // estimation quality — only speed differs.
            assert_eq!(run.result_rows as f64, run.true_card);
        }
    }
}
