//! Per-query end-to-end runs: inject estimates for the sub-plan space,
//! optimize, execute for real, and record times and metrics.
//!
//! The run is two-phased. Phase 1 — sub-plan enumeration, estimator
//! inference, true-cardinality lookups, plan choice, and metric
//! computation — is embarrassingly parallel across queries and fans out
//! over a scoped thread pool ([`cardbench_support::par`]). Phase 2 — the
//! timed plan executions — stays strictly sequential so wall-clock
//! numbers are never polluted by sibling queries competing for cores.
//! Estimation latency is still timed per call inside phase 1: each
//! `estimate` is timed around its own call, which parallelism does not
//! reorder or interleave (one sub-plan's inference runs start-to-finish
//! on one thread).
//!
//! Every estimate is sandboxed ([`crate::fault::guarded_estimate`]):
//! panics and budget overruns become typed [`EstFailure`] records, the
//! affected sub-plan degrades to the PostgreSQL baseline estimate, and
//! the run continues. Estimates are injected through the engine's
//! `clamp_row_est` with the sub-plan's cross-product bound, execution can
//! run under a memory budget, and per-query records stream to an
//! append-only JSONL checkpoint for kill/resume recovery (see
//! [`crate::checkpoint`]).

use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use cardbench_engine::{
    optimize_topo, try_execute_with, CardMap, CostModel, Database, ExecError, ExecScratch,
    ExecStats, PhysicalPlan, TrueCardService,
};
use cardbench_estimators::postgres::PostgresEst;
use cardbench_estimators::{CardEst, EstimatorKind};
use cardbench_metrics::{p_error, q_error_checked, MetricInput};
use cardbench_query::{BoundQuery, SubPlanQuery, TableMask};
use cardbench_support::par;
use cardbench_workload::{Workload, WorkloadQuery};

use crate::checkpoint::{load_checkpoint, CheckpointWriter};
use crate::fault::{EstFailure, EstimateError, QueryFailure, RunOptions};

/// Result of one query under one estimator.
#[derive(Debug, Clone)]
pub struct QueryRun {
    /// Workload query id.
    pub id: usize,
    /// Number of joined tables.
    pub n_tables: usize,
    /// True result cardinality.
    pub true_card: f64,
    /// Wall-clock execution time of the chosen plan.
    pub exec: Duration,
    /// Planning time: the summed inference latency over the sub-plan
    /// space (the component the estimator controls).
    pub plan: Duration,
    /// Number of sub-plan queries estimated.
    pub subplans: usize,
    /// P-Error of the chosen plan.
    pub p_error: f64,
    /// Q-Errors over all sub-plan queries. Sub-plans whose estimate was
    /// non-finite are *excluded* (counted in `excluded_qerrors`), not
    /// scored as if the estimator had answered 1 row.
    pub q_errors: Vec<f64>,
    /// Sub-plans excluded from `q_errors` because the estimate was
    /// invalid (NaN/±inf/degenerate) — a typed rejection, not a score.
    pub excluded_qerrors: u64,
    /// Estimated cardinality per sub-plan, in `connected_subsets` order
    /// (exposed so determinism across thread counts is checkable). For
    /// faulted sub-plans this is the value the optimizer actually saw
    /// (clamped or baseline-substituted).
    pub sub_est_cards: Vec<f64>,
    /// True cardinality per sub-plan, in the same order.
    pub sub_true_cards: Vec<f64>,
    /// COUNT(*) result of the executed plan.
    pub result_rows: u64,
    /// Operator-level execution counters of the chosen plan (identical
    /// across the warm-up and every timed repeat).
    pub exec_stats: ExecStats,
    /// Typed per-sub-plan estimate failures (panic, timeout, NaN, …).
    pub est_failures: Vec<EstFailure>,
    /// Sub-plan estimates the engine's clamp had to intervene on.
    pub clamped_subplans: u64,
    /// Sub-plans degraded to the PostgreSQL baseline estimate after a
    /// hard estimator failure.
    pub fallback_subplans: u64,
    /// Whole-query failure: set when the query produced no executed
    /// result (bind/truth error or memory-budget abort).
    pub failure: Option<QueryFailure>,
}

impl QueryRun {
    /// True when the query executed to completion.
    pub fn completed(&self) -> bool {
        self.failure.is_none()
    }
}

/// All queries of one workload under one estimator.
#[derive(Debug, Clone)]
pub struct MethodRun {
    /// Which estimator.
    pub kind: EstimatorKind,
    /// Training wall time.
    pub train_time: Duration,
    /// Model size in bytes.
    pub model_size: usize,
    /// Per-query results in workload order.
    pub queries: Vec<QueryRun>,
}

impl MethodRun {
    /// Total execution time.
    pub fn exec_total(&self) -> Duration {
        self.queries.iter().map(|q| q.exec).sum()
    }

    /// Total planning (inference) time.
    pub fn plan_total(&self) -> Duration {
        self.queries.iter().map(|q| q.plan).sum()
    }

    /// End-to-end time (execution + planning).
    pub fn e2e_total(&self) -> Duration {
        self.exec_total() + self.plan_total()
    }

    /// Mean inference latency per sub-plan estimate.
    pub fn avg_inference(&self) -> Duration {
        let n: usize = self.queries.iter().map(|q| q.subplans).sum();
        if n == 0 {
            Duration::ZERO
        } else {
            self.plan_total() / n as u32
        }
    }

    /// All sub-plan Q-Errors.
    pub fn all_q_errors(&self) -> Vec<f64> {
        self.queries
            .iter()
            .flat_map(|q| q.q_errors.iter().copied())
            .collect()
    }

    /// All per-query P-Errors (completed queries only).
    pub fn all_p_errors(&self) -> Vec<f64> {
        self.queries
            .iter()
            .filter(|q| q.completed())
            .map(|q| q.p_error)
            .collect()
    }

    /// Operator counters aggregated over all queries: additive counters
    /// sum; `peak_intermediate_bytes` is the max over queries.
    pub fn exec_stats_total(&self) -> ExecStats {
        let mut total = ExecStats::default();
        for q in &self.queries {
            let s = &q.exec_stats;
            total.output_rows += s.output_rows;
            total.intermediate_rows += s.intermediate_rows;
            total.build_rows += s.build_rows;
            total.probe_rows += s.probe_rows;
            total.rows_gathered += s.rows_gathered;
            total.partitions_spilled += s.partitions_spilled;
            total.peak_intermediate_bytes =
                total.peak_intermediate_bytes.max(s.peak_intermediate_bytes);
        }
        total
    }

    /// Improvement over a baseline end-to-end time, in percent
    /// (positive = faster than baseline).
    pub fn improvement_over(&self, baseline: Duration) -> f64 {
        let own = self.e2e_total();
        if baseline.is_zero() {
            return 0.0;
        }
        (baseline.as_secs_f64() - own.as_secs_f64()) / baseline.as_secs_f64() * 100.0
    }

    /// Queries that produced no executed result.
    pub fn failed_queries(&self) -> usize {
        self.queries.iter().filter(|q| !q.completed()).count()
    }

    /// Total typed sub-plan estimate failures across all queries.
    pub fn est_failure_total(&self) -> usize {
        self.queries.iter().map(|q| q.est_failures.len()).sum()
    }

    /// Total sub-plan estimates the clamp intervened on.
    pub fn clamped_total(&self) -> u64 {
        self.queries.iter().map(|q| q.clamped_subplans).sum()
    }

    /// Total sub-plans degraded to the PostgreSQL baseline.
    pub fn fallback_total(&self) -> u64 {
        self.queries.iter().map(|q| q.fallback_subplans).sum()
    }

    /// Total sub-plans excluded from Q-Error aggregation because their
    /// estimate was invalid.
    pub fn excluded_qerror_total(&self) -> u64 {
        self.queries.iter().map(|q| q.excluded_qerrors).sum()
    }
}

/// One query after phase 1: everything except timed execution.
///
/// Public so serving layers ([`plan_query_via`]) can run the planning
/// pipeline without the harness's sequential execution phase; the fields
/// mirror [`QueryRun`]'s planning-side subset.
#[derive(Debug)]
pub struct PlannedQuery {
    /// Workload query id.
    pub id: usize,
    /// Number of joined tables.
    pub n_tables: usize,
    /// True result cardinality.
    pub true_card: f64,
    /// Summed inference latency over the sub-plan space.
    pub plan_time: Duration,
    /// Number of sub-plan queries estimated.
    pub subplans: usize,
    /// P-Error of the chosen plan.
    pub p_error: f64,
    /// Valid sub-plan Q-Errors (see [`QueryRun::q_errors`]).
    pub q_errors: Vec<f64>,
    /// Sub-plans excluded from `q_errors` (invalid estimates).
    pub excluded_qerrors: u64,
    /// Estimated cardinality per sub-plan, `connected_subsets` order.
    pub sub_est_cards: Vec<f64>,
    /// True cardinality per sub-plan, in the same order.
    pub sub_true_cards: Vec<f64>,
    /// Typed per-sub-plan estimate failures.
    pub est_failures: Vec<EstFailure>,
    /// Sub-plan estimates the engine's clamp intervened on.
    pub clamped_subplans: u64,
    /// Sub-plans degraded to the PostgreSQL baseline estimate.
    pub fallback_subplans: u64,
    /// `Ok`: ready to execute. `Err`: the query failed before planning
    /// completed (bind or truth error) and must not execute.
    pub plan: Result<(BoundQuery, PhysicalPlan), QueryFailure>,
}

/// Cross-product cardinality of the masked tables: the PostgreSQL-style
/// upper bound no sub-plan estimate may exceed.
fn cross_product_bound(db: &Database, bound: &BoundQuery, mask: TableMask) -> f64 {
    mask.iter()
        .map(|pos| db.row_count(bound.tables[pos].id) as f64)
        .product()
}

/// Runs every workload query through the optimizer with the estimator's
/// injected cardinalities and executes the chosen plans.
///
/// Planning/estimation parallelism defaults to the environment
/// ([`par::max_threads`]: `CARDBENCH_THREADS`, then `RAYON_NUM_THREADS`,
/// then all cores); use [`run_workload_with_threads`] for an explicit
/// count. Results are identical for every thread count.
pub fn run_workload(
    db: &Database,
    wl: &Workload,
    est: &dyn CardEst,
    truth: &TrueCardService,
    cost: &CostModel,
) -> Vec<QueryRun> {
    run_workload_with_threads(db, wl, est, truth, cost, 0)
}

/// [`run_workload`] with an explicit planning thread count (`0` = auto).
pub fn run_workload_with_threads(
    db: &Database,
    wl: &Workload,
    est: &dyn CardEst,
    truth: &TrueCardService,
    cost: &CostModel,
    threads: usize,
) -> Vec<QueryRun> {
    run_workload_with_options(db, wl, est, truth, cost, &RunOptions::with_threads(threads))
}

/// [`run_workload`] with the full set of guard rails ([`RunOptions`]):
/// sandboxed estimation with a per-estimate wall-clock budget, a per-query
/// executor memory budget, and JSONL checkpoint/resume.
///
/// Phase 1 fans queries out over the configured workers: each worker owns
/// a query end-to-end through sub-plan enumeration, inference (timed per
/// call), true-cardinality lookups, plan choice, and Q-/P-Error. Phase 2
/// then executes the chosen plans one at a time — warm-up plus median of
/// three timed runs — so execution wall-clock is measured on an otherwise
/// idle process, exactly as in the sequential harness.
///
/// With `opts.checkpoint` set, each completed [`QueryRun`] is appended to
/// the checkpoint as it finishes; with `opts.resume` additionally set,
/// records already present for this (estimator, workload) are reused
/// verbatim and their queries skipped. Fault decisions, estimates, and
/// executed results are deterministic, so a killed-and-resumed run equals
/// an uninterrupted one on every non-timing field.
pub fn run_workload_with_options(
    db: &Database,
    wl: &Workload,
    est: &dyn CardEst,
    truth: &TrueCardService,
    cost: &CostModel,
    opts: &RunOptions,
) -> Vec<QueryRun> {
    let _sp = cardbench_obs::span_with("workload", "run", || {
        format!("{} / {}", wl.name, est.name())
    });
    let threads = par::resolve_threads(opts.threads);
    let caches_before = CacheCounters::snapshot(db, truth);

    // Resume: load completed (estimator, workload, query) records.
    let mut resumed: HashMap<usize, QueryRun> = HashMap::new();
    if opts.resume {
        if let Some(path) = &opts.checkpoint {
            for rec in load_checkpoint(path).unwrap_or_default() {
                if rec.method == est.name() && rec.workload == wl.name {
                    resumed.insert(rec.run.id, rec.run);
                }
            }
        }
    }
    let mut writer = opts.checkpoint.as_ref().and_then(|path| {
        let w = if opts.resume {
            CheckpointWriter::append(path)
        } else {
            CheckpointWriter::create(path)
        };
        match w {
            Ok(w) => Some(w),
            Err(e) => {
                eprintln!("[cardbench] checkpoint {} unavailable: {e}", path.display());
                None
            }
        }
    });

    let todo: Vec<&WorkloadQuery> = wl
        .queries
        .iter()
        .filter(|wq| !resumed.contains_key(&wq.id))
        .collect();

    // The graceful-degradation estimator for hard failures, built at most
    // once per run (lazily, shared across planning threads): when an
    // estimate panics or overruns its budget, its sub-plan falls back to
    // the PostgreSQL baseline — the same behaviour as the paper's setup,
    // where the plan still has *some* row count for every sub-plan.
    let fallback: OnceLock<PostgresEst> = OnceLock::new();

    // Phase 1: plan every query (parallel, order-preserving).
    let planned: Vec<PlannedQuery> = par::map(&todo, threads, |_, wq| {
        plan_one(db, wq, est, truth, cost, opts, &fallback)
    });

    // Phase 2: execute the chosen plans (sequential, timed). One scratch
    // arena serves every execution, so only the very first run of the
    // phase pays buffer allocations; results are bit-identical to fresh
    // buffers (asserted by the executor differential property test).
    let mut scratch = ExecScratch::new();
    let mut computed: HashMap<usize, QueryRun> = HashMap::with_capacity(planned.len());
    for p in planned {
        let run = execute_one(db, p, opts, &mut scratch);
        if let Some(mut w) = writer.take() {
            match w.write(est.name(), &wl.name, &run) {
                Ok(()) => writer = Some(w),
                Err(e) => eprintln!("[cardbench] checkpoint write failed: {e}"),
            }
        }
        computed.insert(run.id, run);
    }

    // Stitch resumed and fresh records back into workload order.
    let runs: Vec<QueryRun> = wl
        .queries
        .iter()
        .filter_map(|wq| resumed.remove(&wq.id).or_else(|| computed.remove(&wq.id)))
        .collect();
    record_run_metrics(est.name(), &runs);
    record_cache_metrics(
        est.name(),
        &caches_before,
        &CacheCounters::snapshot(db, truth),
    );
    runs
}

/// Point-in-time (hits, misses) of the four engine-side caches: the
/// predicate filter cache, the one-pass enumerator's per-(table,
/// predicate-set, join-column) aggregate memo, the true-cardinality
/// cache, and the plan-search topology cache.
struct CacheCounters {
    filter: (u64, u64),
    agg: (u64, u64),
    truecard: (u64, u64),
    topology: (u64, u64),
}

impl CacheCounters {
    fn snapshot(db: &Database, truth: &TrueCardService) -> CacheCounters {
        CacheCounters {
            filter: db.filter_cache_stats(),
            agg: db.agg_cache_stats(),
            truecard: truth.cache_stats(),
            topology: db.topology_cache_stats(),
        }
    }
}

/// Folds this run's engine-cache traffic into the observability registry.
/// The underlying counters are cumulative across runs sharing a
/// `Database`/`TrueCardService`, so only the before/after delta is
/// attributed to this method.
fn record_cache_metrics(method: &str, before: &CacheCounters, after: &CacheCounters) {
    use cardbench_obs::counter_add;
    if !cardbench_obs::enabled() {
        return;
    }
    let m = [("method", method)];
    for (hits_family, misses_family, b, a) in [
        (
            "cardbench_filter_cache_hits_total",
            "cardbench_filter_cache_misses_total",
            before.filter,
            after.filter,
        ),
        (
            "cardbench_agg_memo_hits_total",
            "cardbench_agg_memo_misses_total",
            before.agg,
            after.agg,
        ),
        (
            "cardbench_truecard_cache_hits_total",
            "cardbench_truecard_cache_misses_total",
            before.truecard,
            after.truecard,
        ),
        (
            "cardbench_topology_cache_hits_total",
            "cardbench_topology_cache_misses_total",
            before.topology,
            after.topology,
        ),
    ] {
        counter_add(hits_family, &m, a.0.saturating_sub(b.0));
        counter_add(misses_family, &m, a.1.saturating_sub(b.1));
    }
}

/// Folds one workload run's counters into the observability registry in
/// bulk — the hot paths keep their plain struct counters, and the mutex
/// behind the registry is taken once per run, not per row. No-op while
/// recording is disabled.
fn record_run_metrics(method: &str, runs: &[QueryRun]) {
    use cardbench_obs::{counter_add, gauge_max};
    if !cardbench_obs::enabled() {
        return;
    }
    let m = [("method", method)];
    let mut clamped = 0u64;
    let mut fallback = 0u64;
    let mut excluded = 0u64;
    let mut failed = 0u64;
    let mut stats = ExecStats::default();
    for q in runs {
        clamped += q.clamped_subplans;
        fallback += q.fallback_subplans;
        excluded += q.excluded_qerrors;
        failed += u64::from(!q.completed());
        stats.build_rows += q.exec_stats.build_rows;
        stats.probe_rows += q.exec_stats.probe_rows;
        stats.intermediate_rows += q.exec_stats.intermediate_rows;
        stats.rows_gathered += q.exec_stats.rows_gathered;
        stats.partitions_spilled += q.exec_stats.partitions_spilled;
        stats.peak_intermediate_bytes = stats
            .peak_intermediate_bytes
            .max(q.exec_stats.peak_intermediate_bytes);
    }
    counter_add("cardbench_clamped_subplans_total", &m, clamped);
    counter_add("cardbench_fallback_subplans_total", &m, fallback);
    counter_add("cardbench_excluded_qerrors_total", &m, excluded);
    counter_add("cardbench_failed_queries_total", &m, failed);
    counter_add("cardbench_join_build_rows_total", &m, stats.build_rows);
    counter_add("cardbench_join_probe_rows_total", &m, stats.probe_rows);
    counter_add(
        "cardbench_intermediate_rows_total",
        &m,
        stats.intermediate_rows,
    );
    counter_add("cardbench_rows_gathered_total", &m, stats.rows_gathered);
    counter_add(
        "cardbench_partitions_spilled_total",
        &m,
        stats.partitions_spilled,
    );
    gauge_max(
        "cardbench_peak_intermediate_bytes",
        &m,
        stats.peak_intermediate_bytes as f64,
    );
}

/// Estimation outcomes for one query's whole sub-plan space, batch-first.
///
/// The sandboxed batch path ([`crate::fault::guarded_estimate_batch`])
/// runs the estimator's `estimate_batch` once over every sub-plan;
/// estimators with real batching (one forward pass, shared SPN walks,
/// the one-pass true-card enumerator) amortize their per-call overhead
/// there, and batched values are bit-identical to sequential ones by the
/// trait's contract. When the batch is unusable — a panic mid-batch, a
/// wrong-arity result, or an aggregate budget overrun — the query
/// degrades to the guarded per-sub-plan path, which restores exact
/// per-sub-plan fault attribution (per-call timeouts, panic messages),
/// so `EstFailure` accounting, clamping, and the PostgreSQL fallback
/// behave exactly as in the sequential harness.
pub fn estimate_all(
    est: &dyn CardEst,
    db: &Database,
    subs: &[SubPlanQuery],
    timeout: Option<Duration>,
) -> Vec<(Result<f64, EstimateError>, Duration)> {
    use crate::fault::{guarded_estimate, guarded_estimate_batch};

    if let Some(mut results) = guarded_estimate_batch(est, db, subs, timeout) {
        if est.is_oracle() {
            // The paper injects precomputed true cardinalities; time a
            // warm (cached) batch instead of the first computation.
            if let Some(warm) = guarded_estimate_batch(est, db, subs, timeout) {
                for (r, w) in results.iter_mut().zip(warm) {
                    if r.0.is_ok() {
                        r.1 = w.1;
                    }
                }
            }
        }
        return results;
    }
    subs.iter()
        .map(|sub| {
            let (outcome, mut dt) = guarded_estimate(est, db, sub, timeout);
            if est.is_oracle() && outcome.is_ok() {
                // Warm (cached) call, as above.
                let (_, warm) = guarded_estimate(est, db, sub, timeout);
                dt = warm;
            }
            (outcome, dt)
        })
        .collect()
}

/// Phase-1 work for one query: sandboxed estimation over the sub-plan
/// space, sanitized injection, plan choice, and metrics.
pub(crate) fn plan_one(
    db: &Database,
    wq: &WorkloadQuery,
    est: &dyn CardEst,
    truth: &TrueCardService,
    cost: &CostModel,
    opts: &RunOptions,
    fallback: &OnceLock<PostgresEst>,
) -> PlannedQuery {
    plan_query_via(
        db,
        wq,
        &|subs| estimate_all(est, db, subs, opts.timeout),
        truth,
        cost,
        fallback,
    )
}

/// Per-sub-plan `(outcome, latency)` results, in the same order as the
/// sub-plan slice they were computed from.
pub type SubPlanOutcomes = Vec<(Result<f64, EstimateError>, Duration)>;

/// The planning pipeline with the estimation step abstracted out: bind,
/// enumerate the connected sub-plan space, bulk true cardinalities, call
/// `estimate` for the per-sub-plan outcomes, then sanitized injection,
/// plan choice, and Q-/P-Error — exactly [`run_workload`]'s phase 1.
///
/// `estimate` receives the query's sub-plans in `connected_subsets`
/// order and must return one `(outcome, latency)` per sub-plan in the
/// same order. The harness passes [`estimate_all`] (batch-first guarded
/// estimation); a serving layer passes a closure that routes the slice
/// through a shared cross-session batch coalescer. Hard failures in the
/// returned outcomes still degrade to the shared PostgreSQL `fallback`
/// here, so fault semantics do not depend on who estimated.
pub fn plan_query_via(
    db: &Database,
    wq: &WorkloadQuery,
    estimate: &(dyn Fn(&[SubPlanQuery]) -> SubPlanOutcomes + Sync),
    truth: &TrueCardService,
    cost: &CostModel,
    fallback: &OnceLock<PostgresEst>,
) -> PlannedQuery {
    let _sp = cardbench_obs::span_with("plan", "plan", || format!("Q{}", wq.id));
    let query = &wq.query;
    let failed = |plan_time, failure| PlannedQuery {
        id: wq.id,
        n_tables: query.table_count(),
        true_card: wq.true_card,
        plan_time,
        subplans: 0,
        p_error: f64::NAN,
        q_errors: Vec::new(),
        excluded_qerrors: 0,
        sub_est_cards: Vec::new(),
        sub_true_cards: Vec::new(),
        est_failures: Vec::new(),
        clamped_subplans: 0,
        fallback_subplans: 0,
        plan: Err(failure),
    };

    let bound = match BoundQuery::bind(query, db.catalog()) {
        Ok(b) => b,
        Err(e) => {
            return failed(
                Duration::ZERO,
                QueryFailure::Bind {
                    message: e.to_string(),
                },
            )
        }
    };
    // The cached plan-search shape: its mask list is `connected_subsets`
    // order, so dense index i ↔ subs[i] ↔ truths[i] throughout.
    let topo = db.topology(query, &bound);
    let masks = topo.masks();
    let subs: Vec<SubPlanQuery> = masks
        .iter()
        .map(|&mask| SubPlanQuery::project(query, mask))
        .collect();
    // Bulk truth first: the one-pass enumerator fills every connected
    // subset's exact count in a single bottom-up traversal instead of one
    // join execution per mask. The pre-projected sub-plans above feed the
    // cache-key pass, so projection happens once per query, not twice.
    let truths = match truth.cardinalities_for_subplans(db, query, &subs) {
        Ok(t) => t,
        Err(e) => {
            return failed(
                Duration::ZERO,
                QueryFailure::Truth {
                    message: e.to_string(),
                },
            )
        }
    };
    debug_assert_eq!(truths.len(), masks.len());
    let outcomes = estimate(&subs);
    debug_assert_eq!(outcomes.len(), subs.len());
    let mut est_cards = CardMap::new();
    let mut true_cards = CardMap::new();
    let mut plan_time = Duration::ZERO;
    let mut q_errors = Vec::with_capacity(masks.len());
    let mut excluded_qerrors = 0u64;
    let mut sub_est_cards = Vec::with_capacity(masks.len());
    let mut sub_true_cards = Vec::with_capacity(masks.len());
    let mut est_failures = Vec::new();
    let mut fallback_subplans = 0u64;
    for (i, ((&mask, sp), (&(_, t), (outcome, dt)))) in masks
        .iter()
        .zip(&subs)
        .zip(truths.iter().zip(outcomes))
        .enumerate()
    {
        plan_time += dt;
        // Dense index i aligns with `masks` by construction; the cached
        // bound is the same product `cross_product_bound` computes.
        let upper = topo.cross_bound(i);
        debug_assert_eq!(
            upper.to_bits(),
            cross_product_bound(db, &bound, mask).to_bits()
        );
        // Decide what the optimizer sees and what the metrics score.
        // Clean estimates keep their raw value for Q-Error; hard failures
        // score the baseline actually substituted (the plan ran on it);
        // soft failures (NaN/±inf/degenerate) have no meaningful Q-Error
        // — scoring the clamp's 1.0 stand-in would charge the estimator
        // for the *sanitizer's* answer — so they are excluded and counted.
        let (seen, scored) = match outcome {
            Ok(v) => {
                est_cards.insert_bounded(mask, v, upper);
                (v, q_error_checked(v, t))
            }
            Err(err) => {
                let soft = !err.is_hard();
                let injected = if err.is_hard() {
                    fallback_subplans += 1;
                    fallback
                        .get_or_init(|| PostgresEst::fit(db))
                        .estimate(db, sp)
                } else {
                    // Soft failure: the raw value survives to the clamp.
                    match err {
                        EstimateError::NonFinite { value }
                        | EstimateError::Degenerate { value } => value,
                        _ => f64::NAN,
                    }
                };
                est_cards.insert_bounded(mask, injected, upper);
                est_failures.push(EstFailure {
                    mask: mask.0,
                    error: err,
                });
                // The optimizer saw the clamped/substituted value; score
                // hard-failure fallbacks (the plan ran on them), exclude
                // soft ones.
                let seen = est_cards.rows(mask);
                let scored = if soft {
                    MetricInput::Invalid
                } else {
                    q_error_checked(seen, t)
                };
                (seen, scored)
            }
        };
        true_cards.insert(mask, t);
        match scored {
            MetricInput::Valid(qe) => q_errors.push(qe),
            MetricInput::Invalid => excluded_qerrors += 1,
        }
        sub_est_cards.push(seen);
        sub_true_cards.push(t);
    }
    // Replay the dense DP directly over the topology in hand; `p_error`
    // refetches it from the cache (a hit) and shares it across its own
    // two optimize calls and both costings.
    let dense_est = est_cards.dense_view(&topo);
    let (_, plan) = optimize_topo(&topo, &bound, db, &dense_est, cost, false);
    let pe = p_error(db, cost, query, &bound, &est_cards, &true_cards);
    PlannedQuery {
        id: wq.id,
        n_tables: query.table_count(),
        true_card: wq.true_card,
        plan_time,
        subplans: masks.len(),
        p_error: pe,
        q_errors,
        excluded_qerrors,
        sub_est_cards,
        sub_true_cards,
        est_failures,
        clamped_subplans: est_cards.clamped(),
        fallback_subplans,
        plan: Ok((bound, plan)),
    }
}

/// Phase-2 work for one planned query: warm-up plus median-of-three
/// timed executions, under the optional memory budget.
pub(crate) fn execute_one(
    db: &Database,
    p: PlannedQuery,
    opts: &RunOptions,
    scratch: &mut ExecScratch,
) -> QueryRun {
    let _sp = cardbench_obs::span_with("execute", "exec", || format!("Q{}", p.id));
    let mut run = QueryRun {
        id: p.id,
        n_tables: p.n_tables,
        true_card: p.true_card,
        exec: Duration::ZERO,
        plan: p.plan_time,
        subplans: p.subplans,
        p_error: p.p_error,
        q_errors: p.q_errors,
        excluded_qerrors: p.excluded_qerrors,
        sub_est_cards: p.sub_est_cards,
        sub_true_cards: p.sub_true_cards,
        result_rows: 0,
        exec_stats: ExecStats::default(),
        est_failures: p.est_failures,
        clamped_subplans: p.clamped_subplans,
        fallback_subplans: p.fallback_subplans,
        failure: None,
    };
    let (bound, plan) = match p.plan {
        Ok(bp) => bp,
        Err(failure) => {
            run.failure = Some(failure);
            run.p_error = f64::NAN;
            return run;
        }
    };
    let budget = opts.mem_budget_bytes;
    // Warm run first, then median of three timed runs: wall-clock at
    // millisecond scale is dominated by allocator/cache state and
    // scheduling noise, which would otherwise punish whichever method
    // happens to hit a cold or contended moment.
    let (rows, stats) = match try_execute_with(&plan, &bound, db, scratch, budget) {
        Ok(out) => out,
        Err(ExecError::BudgetExceeded {
            peak_bytes,
            budget_bytes,
        }) => {
            run.failure = Some(QueryFailure::ExecBudget {
                peak_bytes,
                budget_bytes,
            });
            return run;
        }
    };
    let mut times = [Duration::ZERO; 3];
    for t in &mut times {
        let t0 = Instant::now();
        // Execution is deterministic: a repeat of a run that fit the
        // budget fits it again.
        let (rows2, stats2) = try_execute_with(&plan, &bound, db, scratch, budget)
            .expect("deterministic re-execution stays within budget");
        *t = t0.elapsed();
        debug_assert_eq!(rows, rows2);
        debug_assert_eq!(stats, stats2);
    }
    times.sort();
    run.exec = times[1];
    run.result_rows = rows;
    run.exec_stats = stats;
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Bench, BenchConfig};
    use crate::factory::build_estimator;

    #[test]
    fn truecard_runs_and_counts_match() {
        let b = Bench::build(BenchConfig::fast(2));
        let built = build_estimator(
            EstimatorKind::TrueCard,
            &b.stats_db,
            &b.stats_train,
            &b.config.settings,
        );
        let truth = TrueCardService::new();
        let runs = run_workload(
            &b.stats_db,
            &b.stats_wl,
            built.est.as_ref(),
            &truth,
            &CostModel::default(),
        );
        assert_eq!(runs.len(), b.stats_wl.queries.len());
        for (run, wq) in runs.iter().zip(&b.stats_wl.queries) {
            // Executed COUNT(*) must equal the generator's truth.
            assert_eq!(run.result_rows as f64, wq.true_card, "Q{}", run.id);
            // Oracle Q-Errors are exactly 1.
            for &qe in &run.q_errors {
                assert!((qe - 1.0).abs() < 1e-9);
            }
            // Oracle P-Error is exactly 1.
            assert!((run.p_error - 1.0).abs() < 1e-9);
            assert!(run.completed());
            assert!(run.est_failures.is_empty());
            assert_eq!(run.fallback_subplans, 0);
        }
    }

    #[test]
    fn postgres_baseline_q_errors_ge_one() {
        let b = Bench::build(BenchConfig::fast(2));
        let built = build_estimator(
            EstimatorKind::Postgres,
            &b.stats_db,
            &b.stats_train,
            &b.config.settings,
        );
        let truth = TrueCardService::new();
        let runs = run_workload(
            &b.stats_db,
            &b.stats_wl,
            built.est.as_ref(),
            &truth,
            &CostModel::default(),
        );
        for run in &runs {
            for &qe in &run.q_errors {
                assert!(qe >= 1.0);
            }
            assert!(run.p_error >= 1.0 - 1e-9);
            // Plans always produce the true count, regardless of
            // estimation quality — only speed differs.
            assert_eq!(run.result_rows as f64, run.true_card);
        }
    }
}
