//! The end-to-end evaluation pipeline: build datasets and workloads,
//! train every estimator, drive the optimizer with injected
//! cardinalities, execute the chosen plans, and render each table and
//! figure of the paper.
//!
//! - [`config`]: benchmark + estimator settings, dataset/workload setup.
//! - [`factory`]: constructs any estimator by kind (timing its training).
//! - [`fault`]: estimator sandboxing, the typed failure taxonomy, and
//!   per-run guard-rail options.
//! - [`endtoend`]: per-query runs (planning time, execution time,
//!   Q-Errors, P-Error).
//! - [`adaptive`]: sequential plan→execute→observe runs feeding executed
//!   true cardinalities back into planning, plus the drift experiment.
//! - [`checkpoint`]: append-only JSONL per-query records for kill/resume.
//! - [`report`]: text renderers for Tables 1–7.
//! - [`results`]: serializable JSON results for downstream analysis.
//! - [`update_exp`]: the dynamic-data experiment (Table 6).
//! - [`case_study`]: the Figure-2 style plan-tree case study.

// The harness must degrade gracefully, never die: library code surfaces
// errors instead of unwrapping them (tests may unwrap).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod adaptive;
pub mod case_study;
pub mod checkpoint;
pub mod config;
pub mod endtoend;
pub mod factory;
pub mod fault;
pub mod observations;
pub mod report;
pub mod results;
pub mod update_exp;

pub use adaptive::{
    median_p_error, median_q_error, record_feedback_metrics, run_adaptive_experiment,
    run_workload_adaptive, AdaptiveExperiment,
};
pub use checkpoint::{load_checkpoint, CheckpointRecord, CheckpointWriter};
pub use config::{Bench, BenchConfig, EstimatorSettings};
pub use endtoend::{
    estimate_all, plan_query_via, run_workload, run_workload_with_options,
    run_workload_with_threads, MethodRun, PlannedQuery, QueryRun,
};
pub use factory::{build_estimator, BuiltEstimator};
pub use fault::{
    deadline_budget, expect_panic_quietly, guarded_estimate, guarded_estimate_batch, EstFailure,
    EstimateError, QueryFailure, RunOptions,
};
pub use observations::{check_observations, render_checks, ObservationCheck};
pub use results::{MethodSummary, QueryRecord, RunResults};
pub use update_exp::{
    run_refresh_experiment, run_update_experiment, RefreshExperiment, UpdateResult, UpdateRow,
    UPDATABLE,
};
