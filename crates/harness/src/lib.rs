//! The end-to-end evaluation pipeline: build datasets and workloads,
//! train every estimator, drive the optimizer with injected
//! cardinalities, execute the chosen plans, and render each table and
//! figure of the paper.
//!
//! - [`config`]: benchmark + estimator settings, dataset/workload setup.
//! - [`factory`]: constructs any estimator by kind (timing its training).
//! - [`endtoend`]: per-query runs (planning time, execution time,
//!   Q-Errors, P-Error).
//! - [`report`]: text renderers for Tables 1–7.
//! - [`results`]: serializable JSON results for downstream analysis.
//! - [`update_exp`]: the dynamic-data experiment (Table 6).
//! - [`case_study`]: the Figure-2 style plan-tree case study.

pub mod case_study;
pub mod config;
pub mod endtoend;
pub mod factory;
pub mod observations;
pub mod report;
pub mod results;
pub mod update_exp;

pub use config::{Bench, BenchConfig, EstimatorSettings};
pub use endtoend::{run_workload, run_workload_with_threads, MethodRun, QueryRun};
pub use factory::{build_estimator, BuiltEstimator};
pub use observations::{check_observations, render_checks, ObservationCheck};
pub use results::{MethodSummary, QueryRecord, RunResults};
