//! The Figure-2 style case study: for the workload's largest query,
//! render the plan trees chosen by contrasting estimators with estimated
//! vs true cardinalities per node, plus measured execution times.

use std::fmt::Write as _;
use std::time::Instant;

use cardbench_engine::{execute, optimize_topo, CardMap, CostModel, Database, TrueCardService};
use cardbench_estimators::CardEst;
use cardbench_query::{BoundQuery, SubPlanQuery};
use cardbench_workload::{Workload, WorkloadQuery};

use crate::report::fmt_duration;

/// Picks the workload query with the largest true cardinality — the
/// regime where paper observations O5/O6 (big sub-plans dominate; the
/// root operator choice matters more than join order) live.
pub fn pick_case_query(wl: &Workload) -> &WorkloadQuery {
    wl.queries
        .iter()
        .max_by(|a, b| a.true_card.total_cmp(&b.true_card))
        .expect("non-empty workload")
}

/// Runs the case study for one estimator and renders its annotated plan.
pub fn case_study(
    db: &Database,
    wq: &WorkloadQuery,
    est: &dyn CardEst,
    truth: &TrueCardService,
    cost: &CostModel,
) -> String {
    let query = &wq.query;
    let bound = BoundQuery::bind(query, db.catalog()).expect("query binds");
    // Enumerate the sub-plan space from the cached topology — the same
    // (shared) shape the end-to-end runs planned this query with.
    let topo = db.topology(query, &bound);
    let mut est_cards = CardMap::new();
    let mut true_cards = CardMap::new();
    for &mask in topo.masks() {
        let sp = SubPlanQuery::project(query, mask);
        est_cards.insert(mask, est.estimate(db, &sp));
        true_cards.insert(mask, truth.cardinality(db, &sp.query).expect("truth"));
    }
    let dense_est = est_cards.dense_view(&topo);
    let (_, plan) = optimize_topo(&topo, &bound, db, &dense_est, cost, false);
    let t0 = Instant::now();
    let (rows, stats) = execute(&plan, &bound, db);
    let exec = t0.elapsed();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{} on Q{} (true card {}, result {rows} rows, exec {}, {} intermediate rows; \
         operators: {} build / {} probe / {} gathered, {} spill parts)",
        est.name(),
        wq.id,
        wq.true_card,
        fmt_duration(exec),
        stats.intermediate_rows,
        stats.build_rows,
        stats.probe_rows,
        stats.rows_gathered,
        stats.partitions_spilled,
    );
    s.push_str(&plan.render(&query.tables, &|mask| {
        format!(
            "[est {:.0} | true {:.0}]",
            est_cards.rows(mask),
            true_cards.rows(mask)
        )
    }));
    // EXPLAIN view costed with the *true* cardinalities: the PPC the
    // plan actually pays (the numerator of P-Error).
    s.push_str("costed with true cardinalities:\n");
    s.push_str(&cardbench_engine::explain(
        &plan,
        db,
        &bound,
        &query.tables,
        cost,
        &true_cards,
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Bench, BenchConfig};
    use crate::factory::build_estimator;
    use cardbench_estimators::EstimatorKind;

    #[test]
    fn case_study_renders_annotated_plans() {
        let b = Bench::build(BenchConfig::fast(6));
        let truth = TrueCardService::new();
        let wq = pick_case_query(&b.stats_wl);
        assert!(wq.true_card >= 1.0);
        for kind in [EstimatorKind::TrueCard, EstimatorKind::Postgres] {
            let built = build_estimator(kind, &b.stats_db, &b.stats_train, &b.config.settings);
            let s = case_study(
                &b.stats_db,
                wq,
                built.est.as_ref(),
                &truth,
                &CostModel::default(),
            );
            assert!(s.contains("Scan"), "plan missing scans:\n{s}");
            assert!(s.contains("| true "), "missing annotations:\n{s}");
        }
    }
}
