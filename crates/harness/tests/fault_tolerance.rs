//! Fault-tolerance integration tests: the harness must survive every
//! chaos fault class with typed failures, degrade gracefully under
//! budgets, and reproduce interrupted runs bit-identically on resume.

use std::sync::OnceLock;
use std::time::Duration;

use cardbench_engine::{clamp_row_est, CostModel, TrueCardService};
use cardbench_estimators::chaos::{ChaosEst, FaultClass};
use cardbench_estimators::{CardEst, EstimatorKind};
use cardbench_harness::report::table_faults;
use cardbench_harness::{
    build_estimator, run_workload_with_options, Bench, BenchConfig, MethodRun, QueryRun, RunOptions,
};
use cardbench_support::proptest::prelude::*;

/// One shared tier-1 benchmark for the whole test binary; building it
/// (datasets + workloads + training split) dominates test wall time.
fn bench() -> &'static Bench {
    static B: OnceLock<Bench> = OnceLock::new();
    B.get_or_init(|| Bench::build(BenchConfig::fast(5)))
}

fn postgres_chaos(rate: f64, classes: Vec<FaultClass>) -> ChaosEst {
    let b = bench();
    let built = build_estimator(
        EstimatorKind::Postgres,
        &b.stats_db,
        &b.stats_train,
        &b.config.settings,
    );
    ChaosEst::with_classes(built.est, b.config.settings.seed, rate, classes)
}

fn run_with(est: &dyn CardEst, truth: &TrueCardService, opts: &RunOptions) -> Vec<QueryRun> {
    let b = bench();
    run_workload_with_options(
        &b.stats_db,
        &b.stats_wl,
        est,
        truth,
        &CostModel::default(),
        opts,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `clamp_row_est` maps EVERY f64 bit pattern — NaN, ±inf,
    /// subnormals, negatives — into [1.0, upper] for any sane bound.
    #[test]
    fn clamp_maps_every_f64_into_bounds(
        bits in any::<u64>(),
        upper in 1.0f64..1e15,
    ) {
        let v = f64::from_bits(bits);
        let (clamped, _) = clamp_row_est(v, upper);
        prop_assert!(clamped.is_finite(), "{v} -> {clamped}");
        prop_assert!(clamped >= 1.0, "{v} -> {clamped}");
        prop_assert!(clamped <= upper, "{v} -> {clamped} > {upper}");
    }

    /// Even the bound itself can be garbage; the result is still a
    /// finite row count of at least 1.
    #[test]
    fn clamp_survives_garbage_bounds(bits in any::<u64>(), ub_bits in any::<u64>()) {
        let (clamped, _) = clamp_row_est(f64::from_bits(bits), f64::from_bits(ub_bits));
        prop_assert!(clamped.is_finite() && clamped >= 1.0);
    }
}

/// Every fault class, injected on 100% of sub-plan estimates, must
/// leave the run complete with the right typed failure attribution —
/// and the executed COUNT(*) must still equal the true cardinality
/// (fault tolerance may cost plan quality, never correctness).
#[test]
fn every_fault_class_survives_at_full_rate() {
    let truth = TrueCardService::new();
    for class in FaultClass::ALL {
        let chaos = postgres_chaos(1.0, vec![class]).delay(Duration::from_millis(5));
        let mut opts = RunOptions::with_threads(2);
        // A 1ms budget converts every 5ms Delay fault into TimedOut.
        // Only set for Delay: the timeout check precedes the value
        // checks, so scheduler jitter on a loaded test machine could
        // otherwise reclassify an instant NaN return as timed_out.
        if class == FaultClass::Delay {
            opts.timeout = Some(Duration::from_millis(1));
        }
        let runs = run_with(&chaos, &truth, &opts);
        assert_eq!(runs.len(), bench().stats_wl.queries.len());
        for run in &runs {
            assert!(run.completed(), "{}: Q{} failed", class.name(), run.id);
            assert_eq!(
                run.result_rows as f64,
                run.true_card,
                "{}: Q{} wrong result",
                class.name(),
                run.id
            );
            for qe in &run.q_errors {
                assert!(
                    qe.is_finite() && *qe >= 1.0,
                    "{}: bad q_error {qe}",
                    class.name()
                );
            }
            let expect_kind = match class {
                FaultClass::Panic => Some("panicked"),
                FaultClass::Delay => Some("timed_out"),
                FaultClass::Nan | FaultClass::PosInf | FaultClass::NegInf => Some("non_finite"),
                FaultClass::Negative => Some("degenerate"),
                // Zero is a legal (empty) estimate: clamped to 1.0, not
                // recorded as a failure.
                FaultClass::Zero => None,
            };
            match expect_kind {
                Some(kind) => {
                    assert_eq!(run.est_failures.len(), run.subplans, "{}", class.name());
                    for f in &run.est_failures {
                        assert_eq!(f.error.kind(), kind, "{}", class.name());
                    }
                    if matches!(class, FaultClass::Panic | FaultClass::Delay) {
                        assert_eq!(run.fallback_subplans as usize, run.subplans);
                    }
                }
                None => {
                    assert!(run.est_failures.is_empty());
                    // Every zero estimate is clamped up to 1.0.
                    assert_eq!(run.clamped_subplans as usize, run.subplans);
                }
            }
        }
    }
}

/// Differential check: a 20%-chaos run still executes every non-failed
/// query to the exact same COUNT(*) as the TrueCard oracle run.
#[test]
fn chaos_run_matches_oracle_executed_results() {
    let b = bench();
    let truth = TrueCardService::new();
    let opts = RunOptions::with_threads(2);

    let oracle = build_estimator(
        EstimatorKind::TrueCard,
        &b.stats_db,
        &b.stats_train,
        &b.config.settings,
    );
    let clean = run_with(oracle.est.as_ref(), &truth, &opts);

    let chaos = postgres_chaos(0.2, FaultClass::VALUES.to_vec());
    let chaotic = run_with(&chaos, &truth, &opts);

    assert_eq!(clean.len(), chaotic.len());
    let mut faulted = 0usize;
    for (c, f) in clean.iter().zip(&chaotic) {
        assert_eq!(c.id, f.id);
        if f.completed() {
            assert_eq!(
                c.result_rows, f.result_rows,
                "Q{}: chaos changed the executed result",
                c.id
            );
        }
        faulted += f.est_failures.len();
    }
    assert!(faulted > 0, "20% chaos must actually inject faults");
}

/// Kill/resume: truncating the checkpoint mid-run and resuming must
/// reproduce the uninterrupted run bit-for-bit on every deterministic
/// field, even with value faults firing.
#[test]
fn killed_and_resumed_run_is_bit_identical() {
    let truth = TrueCardService::new();
    let ckpt = std::env::temp_dir().join(format!(
        "cardbench_fault_tolerance_resume_{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&ckpt);

    let mut opts = RunOptions::with_threads(2);
    opts.checkpoint = Some(ckpt.clone());
    let full = run_with(
        &postgres_chaos(0.3, FaultClass::VALUES.to_vec()),
        &truth,
        &opts,
    );

    // Simulate a kill: keep only the first half of the records.
    let text = std::fs::read_to_string(&ckpt).expect("checkpoint written");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), full.len());
    let torn: String = lines[..lines.len() / 2]
        .iter()
        .map(|l| format!("{l}\n"))
        .collect();
    std::fs::write(&ckpt, torn).expect("truncate");

    opts.resume = true;
    let resumed = run_with(
        &postgres_chaos(0.3, FaultClass::VALUES.to_vec()),
        &truth,
        &opts,
    );
    let _ = std::fs::remove_file(&ckpt);

    assert_eq!(full.len(), resumed.len());
    for (a, b) in full.iter().zip(&resumed) {
        assert_eq!(a.id, b.id);
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.sub_est_cards), bits(&b.sub_est_cards), "Q{}", a.id);
        assert_eq!(bits(&a.q_errors), bits(&b.q_errors), "Q{}", a.id);
        assert_eq!(a.p_error.to_bits(), b.p_error.to_bits(), "Q{}", a.id);
        assert_eq!(a.result_rows, b.result_rows, "Q{}", a.id);
        assert_eq!(a.exec_stats, b.exec_stats, "Q{}", a.id);
        assert_eq!(a.est_failures, b.est_failures, "Q{}", a.id);
        assert_eq!(a.failure, b.failure, "Q{}", a.id);
        assert_eq!(a.clamped_subplans, b.clamped_subplans, "Q{}", a.id);
        assert_eq!(a.fallback_subplans, b.fallback_subplans, "Q{}", a.id);
    }
}

/// A starved memory budget aborts individual queries with a typed
/// failure — the run and the report both survive.
#[test]
fn memory_budget_aborts_queries_not_the_run() {
    let b = bench();
    let truth = TrueCardService::new();
    let oracle = build_estimator(
        EstimatorKind::TrueCard,
        &b.stats_db,
        &b.stats_train,
        &b.config.settings,
    );
    let mut opts = RunOptions::with_threads(2);
    opts.mem_budget_bytes = Some(1);
    let runs = run_with(oracle.est.as_ref(), &truth, &opts);
    assert_eq!(runs.len(), b.stats_wl.queries.len());
    let failed: Vec<&QueryRun> = runs.iter().filter(|r| !r.completed()).collect();
    assert!(
        !failed.is_empty(),
        "a 1-byte budget must abort at least one join query"
    );
    for f in &failed {
        let failure = f.failure.as_ref().expect("typed failure");
        assert_eq!(failure.kind(), "exec_budget");
    }

    // The partial run renders: failed cells, not panics.
    let method = MethodRun {
        kind: EstimatorKind::TrueCard,
        train_time: Duration::ZERO,
        model_size: 0,
        queries: runs,
    };
    let report = table_faults(&[method], "STATS-CEB");
    assert!(report.contains("failed(memory budget exceeded"), "{report}");
}

/// Regression for the NaN-poisoning bug class: an estimator that
/// returns a non-finite value on EVERY sub-plan estimate must still
/// produce a complete run whose reports and serialized results render —
/// the old `sort_by(partial_cmp().unwrap())` percentile and the
/// `f64::max` clamp in `q_error` both died or lied here.
#[test]
fn all_nonfinite_run_completes_reporting() {
    let truth = TrueCardService::new();
    let chaos = postgres_chaos(
        1.0,
        vec![FaultClass::Nan, FaultClass::PosInf, FaultClass::NegInf],
    );
    let queries = run_with(&chaos, &truth, &RunOptions::with_threads(2));
    let b = bench();
    assert_eq!(queries.len(), b.stats_wl.queries.len());
    for q in &queries {
        assert!(q.completed(), "Q{} must execute on clamped estimates", q.id);
        // Every sub-plan estimate failed soft, so every Q-Error is
        // excluded rather than silently scored as a 1-row estimate.
        assert!(
            q.q_errors.is_empty(),
            "Q{} scored a poisoned estimate",
            q.id
        );
        assert_eq!(q.excluded_qerrors, q.subplans as u64, "Q{}", q.id);
    }

    let run = MethodRun {
        kind: EstimatorKind::Postgres,
        train_time: Duration::ZERO,
        model_size: 0,
        queries,
    };
    // Aggregation and every renderer must be total: percentiles over the
    // empty Q-Error set are NaN, printed as dashes — never a panic.
    let (q50, _, q99) = cardbench_metrics::percentile_triple(&run.all_q_errors());
    assert!(q50.is_nan() && q99.is_nan());
    let faults = table_faults(std::slice::from_ref(&run), "STATS-CEB");
    assert!(faults.contains("ExclQE"), "{faults}");
    let t7 = cardbench_harness::report::table7(std::slice::from_ref(&run), "STATS-CEB");
    assert!(t7.contains('—'), "{t7}");
    let breakdown =
        cardbench_harness::report::table_time_breakdown(std::slice::from_ref(&run), "STATS-CEB", 3);
    assert!(breakdown.contains("Time breakdown"), "{breakdown}");
    let results = cardbench_harness::RunResults::collect(&[run], &[]);
    let json = results.to_json();
    let back = cardbench_harness::RunResults::from_json(&json).expect("results roundtrip");
    assert_eq!(
        back.summaries[0].excluded_qerrors,
        results.summaries[0].excluded_qerrors
    );
    assert!(back.summaries[0].excluded_qerrors > 0);
}
