//! Differential tests for the amortized sub-plan pipeline.
//!
//! Two contracts, both bit-level:
//!
//! - `CardEst::estimate_batch` over a query's whole sub-plan set must be
//!   bit-identical to calling `estimate` per sub-plan, for every
//!   registered estimator kind — including under injected chaos value
//!   faults (NaN/±inf/negative/zero propagate unchanged through the
//!   batch path);
//! - the engine's one-pass true-cardinality enumerator
//!   ([`subplan_true_cards`]) must be bit-identical to per-mask
//!   [`exact_cardinality`] on real STATS-schema queries.

use std::sync::OnceLock;

use cardbench_engine::{exact_cardinality, subplan_true_cards, TrueCardService};
use cardbench_estimators::chaos::{ChaosEst, FaultClass};
use cardbench_estimators::{CardEst, EstimatorKind};
use cardbench_harness::{build_estimator, Bench, BenchConfig};
use cardbench_query::{connected_subsets, JoinQuery, SubPlanQuery};
use cardbench_support::proptest::prelude::*;
use cardbench_workload::{stats_ceb, WorkloadConfig};

/// One shared tier-1 benchmark for the whole test binary.
fn bench() -> &'static Bench {
    static B: OnceLock<Bench> = OnceLock::new();
    B.get_or_init(|| Bench::build(BenchConfig::fast(9)))
}

/// Every estimator kind, built once on the shared STATS database.
fn estimators() -> &'static Vec<(EstimatorKind, Box<dyn CardEst>)> {
    static E: OnceLock<Vec<(EstimatorKind, Box<dyn CardEst>)>> = OnceLock::new();
    E.get_or_init(|| {
        let b = bench();
        EstimatorKind::ALL
            .into_iter()
            .map(|kind| {
                let built = build_estimator(kind, &b.stats_db, &b.stats_train, &b.config.settings);
                (kind, built.est)
            })
            .collect()
    })
}

/// Random acyclic 2–5-table queries on the STATS schema, derived from a
/// proptest-chosen generator seed.
fn random_queries(seed: u64) -> Vec<JoinQuery> {
    let b = bench();
    let cfg = WorkloadConfig {
        seed,
        templates: 6,
        queries: 3,
        max_tables: 5,
        max_predicates: 4,
        retries: 10,
        max_subplan_card: 1e6,
    };
    stats_ceb(&b.stats_db, &cfg)
        .queries
        .into_iter()
        .map(|wq| wq.query)
        .collect()
}

/// Projects a query's full connected sub-plan space.
fn subplans(q: &JoinQuery) -> Vec<SubPlanQuery> {
    connected_subsets(q)
        .into_iter()
        .map(|m| SubPlanQuery::project(q, m))
        .collect()
}

/// Asserts `estimate_batch` == per-sub `estimate`, bit for bit (NaN
/// compares by bit pattern too).
fn assert_batch_matches(name: &str, est: &dyn CardEst, subs: &[SubPlanQuery]) {
    let db = &bench().stats_db;
    let batched = est.estimate_batch(db, subs);
    assert_eq!(batched.len(), subs.len(), "{name}: batch arity");
    for (sub, b) in subs.iter().zip(&batched) {
        let s = est.estimate(db, sub);
        assert_eq!(
            s.to_bits(),
            b.to_bits(),
            "{name} mask {:?}: sequential {s} vs batched {b}",
            sub.mask
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Every registered estimator's batch path is bit-identical to its
    /// sequential path on random acyclic STATS queries.
    #[test]
    fn estimate_batch_bit_identical_for_all_kinds(seed in 0u64..1000) {
        for q in random_queries(seed) {
            let subs = subplans(&q);
            for (kind, est) in estimators() {
                assert_batch_matches(kind.name(), est.as_ref(), &subs);
            }
        }
    }

    /// Chaos value faults (NaN, ±inf, negative, zero) flow through the
    /// batch path unchanged: a faulted wrapper's batch equals its
    /// per-sub-plan answers bit for bit.
    #[test]
    fn estimate_batch_bit_identical_under_chaos_values(
        seed in 0u64..1000,
        chaos_seed in 0u64..1000,
    ) {
        let b = bench();
        let built = build_estimator(
            EstimatorKind::Postgres,
            &b.stats_db,
            &b.stats_train,
            &b.config.settings,
        );
        let est = ChaosEst::with_classes(built.est, chaos_seed, 0.6, FaultClass::VALUES.to_vec());
        for q in random_queries(seed) {
            assert_batch_matches("Chaos", &est, &subplans(&q));
        }
    }

    /// The one-pass enumerator agrees bit-for-bit with per-mask exact
    /// execution on random acyclic STATS queries, and the bulk service
    /// API returns the same values.
    #[test]
    fn one_pass_enumeration_bit_identical_to_per_mask(seed in 0u64..1000) {
        let db = &bench().stats_db;
        let truth = TrueCardService::new();
        for q in random_queries(seed) {
            let masks = connected_subsets(&q);
            let one_pass = subplan_true_cards(db, &q).expect("enumeration succeeds");
            let bulk = truth
                .cardinalities_for_query(db, &q)
                .expect("bulk service succeeds");
            assert_eq!(one_pass.len(), masks.len());
            assert_eq!(bulk.len(), masks.len());
            for ((&mask, &(m1, c1)), &(m2, c2)) in
                masks.iter().zip(&one_pass).zip(&bulk)
            {
                assert_eq!(mask, m1);
                assert_eq!(mask, m2);
                let sub = SubPlanQuery::project(&q, mask);
                let exact = exact_cardinality(db, &sub.query).expect("exact succeeds");
                assert_eq!(
                    exact.to_bits(),
                    c1.to_bits(),
                    "mask {mask:?}: exact {exact} vs one-pass {c1}"
                );
                assert_eq!(exact.to_bits(), c2.to_bits());
            }
        }
    }
}
