//! Differential and property tests for the adaptive feedback layer.
//!
//! Three contracts:
//!
//! - a [`FeedbackEst`] whose store holds **zero observations** is
//!   bit-identical to its inner estimator — for every registered kind,
//!   on both the sequential and batch paths;
//! - replaying a workload against a warm store never makes any query's
//!   q-error worse than the warmup pass (warmup monotonicity);
//! - poisoned observations (NaN/±inf/negative estimates or truths) can
//!   never make the store emit a non-finite or negative estimate, and
//!   corrections stay within the configured clamp band.

use std::sync::{Arc, OnceLock};

use cardbench_engine::{CostModel, TrueCardService};
use cardbench_estimators::{CardEst, EstimatorKind};
use cardbench_feedback::{FeedbackConfig, FeedbackEst, FeedbackStore};
use cardbench_harness::{
    build_estimator, median_q_error, run_workload_adaptive, Bench, BenchConfig, RunOptions,
};
use cardbench_query::{connected_subsets, JoinQuery, SubPlanQuery};
use cardbench_support::proptest::prelude::*;
use cardbench_workload::{stats_ceb, WorkloadConfig};

fn bench() -> &'static Bench {
    static B: OnceLock<Bench> = OnceLock::new();
    B.get_or_init(|| Bench::build(BenchConfig::fast(17)))
}

/// Random acyclic 2–5-table queries on the STATS schema.
fn random_queries(seed: u64) -> Vec<JoinQuery> {
    let b = bench();
    let cfg = WorkloadConfig {
        seed,
        templates: 6,
        queries: 3,
        max_tables: 5,
        max_predicates: 4,
        retries: 10,
        max_subplan_card: 1e6,
    };
    stats_ceb(&b.stats_db, &cfg)
        .queries
        .into_iter()
        .map(|wq| wq.query)
        .collect()
}

fn subplans(q: &JoinQuery) -> Vec<SubPlanQuery> {
    connected_subsets(q)
        .into_iter()
        .map(|m| SubPlanQuery::project(q, m))
        .collect()
}

/// Every kind, wrapped around an *empty* enabled store: the wrapper must
/// be a bit-exact no-op on both the per-sub-plan and the batch path.
#[test]
fn empty_store_is_bit_identical_to_inner_for_all_kinds() {
    let b = bench();
    let db = &b.stats_db;
    for kind in EstimatorKind::ALL {
        let built = build_estimator(kind, db, &b.stats_train, &b.config.settings);
        let wrapped = FeedbackEst::new(built.est, Arc::new(FeedbackStore::default()), true);
        for q in random_queries(31) {
            let subs = subplans(&q);
            let inner_batch = wrapped.inner().estimate_batch(db, &subs);
            let outer_batch = wrapped.estimate_batch(db, &subs);
            for (i, sub) in subs.iter().enumerate() {
                let want = wrapped.inner().estimate(db, sub);
                let got = wrapped.estimate(db, sub);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "{} mask {:?}: empty-store wrapper perturbed estimate",
                    kind.name(),
                    sub.mask
                );
                assert_eq!(
                    outer_batch[i].to_bits(),
                    inner_batch[i].to_bits(),
                    "{} mask {:?}: empty-store wrapper perturbed batch",
                    kind.name(),
                    sub.mask
                );
            }
        }
        assert!(
            wrapped.store().is_empty(),
            "{}: estimation alone must not populate the store",
            kind.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Warmup monotonicity: a second adaptive pass over the same
    /// workload never has a worse q-error than the first on any query,
    /// and the medians are non-increasing (observed truths only ever
    /// add information).
    #[test]
    fn replay_qerror_never_worse_than_warmup(seed in 0u64..1000) {
        let b = bench();
        let built = build_estimator(
            EstimatorKind::Postgres,
            &b.stats_db,
            &b.stats_train,
            &b.config.settings,
        );
        let store = Arc::new(FeedbackStore::new(FeedbackConfig::default()));
        let est = FeedbackEst::new(built.est, Arc::clone(&store), true);
        let truth = TrueCardService::new();
        let cost = CostModel::default();
        let wl = {
            let cfg = WorkloadConfig { seed, templates: 4, queries: 4, ..WorkloadConfig::stats_ceb(seed) };
            stats_ceb(&b.stats_db, &cfg)
        };
        let opts = RunOptions::default();
        let warm = run_workload_adaptive(&b.stats_db, &wl, &est, est.store(), &truth, &cost, &opts);
        let replay = run_workload_adaptive(&b.stats_db, &wl, &est, est.store(), &truth, &cost, &opts);
        for (w, r) in warm.iter().zip(&replay) {
            let wq = w.q_errors.iter().cloned().fold(1.0, f64::max);
            let rq = r.q_errors.iter().cloned().fold(1.0, f64::max);
            prop_assert!(
                rq <= wq,
                "Q{}: replay max q-error {rq} worse than warmup {wq}",
                w.id
            );
        }
        prop_assert!(median_q_error(&replay) <= median_q_error(&warm));
    }

    /// Poisoning: arbitrary garbage observations (non-finite or negative
    /// estimates and truths, plus wild-but-valid magnitudes) never make
    /// `apply` return a non-finite or negative value, and any correction
    /// stays inside the configured clamp band around the inner estimate.
    #[test]
    fn poisoned_store_never_emits_non_finite_or_unclamped(
        seed in 0u64..1000,
        est_picks in prop::collection::vec(0usize..7, 8),
        truth_picks in prop::collection::vec(0usize..6, 8),
    ) {
        const EST_POISON: [f64; 7] = [
            f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0, 0.0, 1e-300, 1e300,
        ];
        const TRUTH_POISON: [f64; 6] = [
            f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -5.0, 0.0, 1e18,
        ];
        let ests: Vec<f64> = est_picks.iter().map(|&i| EST_POISON[i]).collect();
        let truths: Vec<f64> = truth_picks.iter().map(|&i| TRUTH_POISON[i]).collect();
        let cfg = FeedbackConfig { warmup: 1, ..FeedbackConfig::default() };
        let max_c = cfg.max_correction;
        let store = FeedbackStore::new(cfg);
        let queries = random_queries(seed);
        let q = &queries[0];
        // Poison the store: same structural template, garbage values.
        for (e, t) in ests.iter().zip(&truths) {
            store.observe(q, *e, *t);
        }
        for inner in [0.0, 1.0, 42.5, 1e12, f64::MAX] {
            let out = store.apply(q, inner);
            prop_assert!(
                out.is_finite() && out >= 0.0,
                "apply({inner}) produced {out}"
            );
        }
        // A structural sibling (no exact entry) only ever sees a clamped
        // multiplicative correction.
        if queries.len() > 1 && queries[1].template_hash() == q.template_hash() {
            let sib = &queries[1];
            for inner in [1.0, 1e6] {
                let out = store.apply(sib, inner);
                prop_assert!(out.is_finite() && out >= 0.0);
                if out != inner {
                    let ratio = out / inner;
                    prop_assert!(
                        ratio >= 1.0 / max_c - 1e-12 && ratio <= max_c + 1e-12,
                        "correction ratio {ratio} escaped the clamp band"
                    );
                }
            }
        }
        // Every call is accounted for: each either counts as an
        // observation or a rejected truth, plus at most one extra
        // `rejected` tick when the first accepted truth arrived with a
        // poisoned estimate (recorded but useless as a correction).
        let stats = store.stats();
        let total = stats.observations + stats.rejected;
        let n = ests.len() as u64;
        prop_assert!(
            total == n || total == n + 1,
            "observations {} + rejected {} vs {} calls",
            stats.observations,
            stats.rejected,
            n
        );
    }
}
