//! Engine operator micro-benchmarks: scans and the three join
//! algorithms at benchmark-relevant input sizes.

use cardbench_support::criterion::{BenchmarkId, Criterion};
use cardbench_support::{criterion_group, criterion_main};

use cardbench_datagen::{stats_catalog, StatsConfig};
use cardbench_engine::{execute, Database, JoinAlgo, PhysicalPlan, ScanMethod};
use cardbench_query::{BoundQuery, JoinEdge, JoinQuery, Predicate, Region, TableMask};

fn db() -> Database {
    Database::new(stats_catalog(&StatsConfig {
        scale: 0.02,
        ..StatsConfig::default()
    }))
}

fn join_plan(algo: JoinAlgo) -> PhysicalPlan {
    PhysicalPlan::Join {
        algo,
        left: Box::new(PhysicalPlan::Scan {
            table_pos: 0,
            method: ScanMethod::Seq,
            mask: TableMask::single(0),
            est_rows: 1000.0,
        }),
        right: Box::new(PhysicalPlan::Scan {
            table_pos: 1,
            method: ScanMethod::Seq,
            mask: TableMask::single(1),
            est_rows: 1000.0,
        }),
        edge: 0,
        mask: TableMask::full(2),
        est_rows: 1000.0,
    }
}

fn bench_joins(c: &mut Criterion) {
    let db = db();
    let q = JoinQuery {
        tables: vec!["posts".into(), "comments".into()],
        joins: vec![JoinEdge::new(0, "Id", 1, "PostId")],
        predicates: vec![],
    };
    let bound = BoundQuery::bind(&q, db.catalog()).unwrap();
    let mut group = c.benchmark_group("join_algorithms");
    for algo in [JoinAlgo::Hash, JoinAlgo::Merge, JoinAlgo::IndexNestedLoop] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{algo:?}")),
            &algo,
            |b, &algo| b.iter(|| execute(&join_plan(algo), &bound, &db)),
        );
    }
    group.finish();
}

fn bench_scans(c: &mut Criterion) {
    let db = db();
    let q = JoinQuery::single(
        "votes",
        vec![Predicate::new(0, "VoteTypeId", Region::eq(2))],
    );
    let bound = BoundQuery::bind(&q, db.catalog()).unwrap();
    let mut group = c.benchmark_group("scan_methods");
    for method in [ScanMethod::Seq, ScanMethod::Index] {
        let plan = PhysicalPlan::Scan {
            table_pos: 0,
            method,
            mask: TableMask::single(0),
            est_rows: 100.0,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{method:?}")),
            &plan,
            |b, plan| b.iter(|| execute(plan, &bound, &db)),
        );
    }
    group.finish();
}

fn bench_truecard(c: &mut Criterion) {
    use cardbench_engine::exact_cardinality;
    let db = db();
    let q = JoinQuery {
        tables: vec!["users".into(), "posts".into(), "comments".into()],
        joins: vec![
            JoinEdge::new(0, "Id", 1, "OwnerUserId"),
            JoinEdge::new(1, "Id", 2, "PostId"),
        ],
        predicates: vec![Predicate::new(0, "Reputation", Region::ge(50))],
    };
    c.bench_function("truecard_message_passing_3way", |b| {
        b.iter(|| exact_cardinality(&db, &q).unwrap())
    });
}

criterion_group!(benches, bench_joins, bench_scans, bench_truecard);
criterion_main!(benches);
