//! Sketch-estimator benchmark: sharded build throughput (with the
//! bit-identity check that makes the sharding free), model size against
//! the other fifteen kinds, per-estimate latency, and the
//! refresh-in-place vs retrain comparison on a temporal shift.
//!
//! Writes `BENCH_sketch.json` at the repo root; `CARDBENCH_FAST=1` runs
//! a tiny smoke and skips the JSON.

use std::path::PathBuf;
use std::time::Instant;

use cardbench_support::json::Json;

use cardbench_datagen::{stats_catalog, StatsConfig};
use cardbench_engine::{CostModel, Database};
use cardbench_estimators::EstimatorKind;
use cardbench_harness::{
    build_estimator, run_refresh_experiment, EstimatorSettings, RefreshExperiment,
};
use cardbench_query::{connected_subsets, SubPlanQuery};
use cardbench_sketch::{SketchConfig, SketchEst};
use cardbench_workload::{stats_ceb, training_workload, Workload, WorkloadConfig};

/// One sharded-build measurement.
struct BuildPoint {
    shards: usize,
    secs: f64,
    rows_per_sec: f64,
    speedup: f64,
    digest_matches: bool,
}

/// Best-of-`reps` wall time of a sharded fit.
fn time_build(db: &Database, cfg: &SketchConfig, shards: usize, reps: usize) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut digest = 0;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let est = SketchEst::fit_sharded(db, cfg, shards);
        best = best.min(t0.elapsed().as_secs_f64());
        digest = est.state_digest();
    }
    (best, digest)
}

/// `q`-th latency percentile of a sorted nanosecond sample.
fn pct(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Per-estimate latency of `est` over every connected sub-plan of the
/// workload: (p50_ns, p99_ns, calls).
fn estimate_latency(
    db: &Database,
    wl: &Workload,
    est: &dyn cardbench_estimators::CardEst,
    reps: usize,
) -> (u64, u64, usize) {
    let subs: Vec<SubPlanQuery> = wl
        .queries
        .iter()
        .flat_map(|wq| {
            connected_subsets(&wq.query)
                .into_iter()
                .map(|mask| SubPlanQuery::project(&wq.query, mask))
        })
        .collect();
    let mut ns = Vec::with_capacity(subs.len() * reps);
    for _ in 0..reps {
        for sub in &subs {
            let t0 = Instant::now();
            let e = est.estimate(db, sub);
            ns.push(t0.elapsed().as_nanos() as u64);
            assert!(e.is_finite() && e >= 0.0);
        }
    }
    ns.sort_unstable();
    (pct(&ns, 0.5), pct(&ns, 0.99), subs.len())
}

fn refresh_json(r: &RefreshExperiment) -> Json {
    Json::object([
        ("stale_median_q_error", Json::Number(r.stale_q)),
        ("refreshed_median_q_error", Json::Number(r.refreshed_q)),
        ("retrained_median_q_error", Json::Number(r.retrained_q)),
        (
            "refresh_ms",
            Json::Number(r.refresh_time.as_secs_f64() * 1e3),
        ),
        (
            "retrain_ms",
            Json::Number(r.retrain_time.as_secs_f64() * 1e3),
        ),
        ("delta_rows", Json::Number(r.delta_rows as f64)),
        ("model_bytes", Json::Number(r.model_bytes as f64)),
        (
            "refresh_matches_retrain",
            Json::Bool(r.refresh_matches_retrain),
        ),
    ])
}

fn main() {
    let smoke = std::env::var("CARDBENCH_FAST").is_ok_and(|v| v == "1");
    let seed = 17;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let stats_cfg = if smoke {
        StatsConfig::tiny(seed)
    } else {
        StatsConfig {
            seed,
            ..StatsConfig::default()
        }
    };
    let db = Database::new(stats_catalog(&stats_cfg));
    let total_rows: usize = db.catalog().tables().iter().map(|t| t.row_count()).sum();
    let settings = if smoke {
        EstimatorSettings::fast(seed)
    } else {
        EstimatorSettings::standard(seed)
    };
    let sketch_cfg = &settings.sketch;
    let reps = if smoke { 1 } else { 3 };

    // --- Sharded build throughput, bit-identity enforced per point. ---
    let (seq_secs, seq_digest) = time_build(&db, sketch_cfg, 1, reps);
    let mut build = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let (secs, digest) = time_build(&db, sketch_cfg, shards, reps);
        let point = BuildPoint {
            shards,
            secs,
            rows_per_sec: total_rows as f64 / secs,
            speedup: seq_secs / secs,
            digest_matches: digest == seq_digest,
        };
        assert!(point.digest_matches, "{shards}-shard digest diverged");
        println!(
            "build {:>2} shards: {:>8.1} ms  {:>12.0} rows/s  speedup {:>5.2}x  bit-identical",
            point.shards,
            point.secs * 1e3,
            point.rows_per_sec,
            point.speedup
        );
        build.push(point);
    }
    let speedup4 = build
        .iter()
        .find(|p| p.shards == 4)
        .map_or(1.0, |p| p.speedup);

    // --- Per-estimate latency: sketch vs the traditional baseline. ---
    let wl = stats_ceb(
        &db,
        &WorkloadConfig {
            templates: if smoke { 6 } else { 12 },
            queries: if smoke { 8 } else { 24 },
            max_tables: 4,
            ..WorkloadConfig::stats_ceb(seed ^ 0x51)
        },
    );
    let train = if smoke {
        cardbench_estimators::lw::TrainingSet::default()
    } else {
        let (qs, cs) = training_workload(&db, 400, 4, seed ^ 0x7a);
        cardbench_estimators::lw::TrainingSet {
            queries: qs,
            cards: cs,
        }
    };
    let sketch = SketchEst::fit(&db, sketch_cfg);
    let lat_reps = if smoke { 2 } else { 5 };
    let (p50, p99, subplans) = estimate_latency(&db, &wl, &sketch, lat_reps);
    let pg = build_estimator(EstimatorKind::Postgres, &db, &train, &settings);
    let (pg_p50, pg_p99, _) = estimate_latency(&db, &wl, pg.est.as_ref(), lat_reps);
    println!(
        "estimate latency over {subplans} sub-plans: sketch p50 {:.1} us / p99 {:.1} us, \
         postgres p50 {:.1} us / p99 {:.1} us",
        p50 as f64 / 1e3,
        p99 as f64 / 1e3,
        pg_p50 as f64 / 1e3,
        pg_p99 as f64 / 1e3
    );

    // --- Refresh-in-place vs retrain on the temporal split. ---
    let refresh = run_refresh_experiment(&stats_cfg, &wl, &settings, &CostModel::default());
    assert!(refresh.refresh_matches_retrain, "refresh != retrain state");
    assert!(
        refresh.refreshed_q <= refresh.stale_q,
        "refresh did not beat stale: {} vs {}",
        refresh.refreshed_q,
        refresh.stale_q
    );
    println!(
        "refresh: stale q {:.3} -> refreshed q {:.3} (retrained {:.3}); \
         {:.1} ms vs retrain {:.1} ms, bit-identical: {}",
        refresh.stale_q,
        refresh.refreshed_q,
        refresh.retrained_q,
        refresh.refresh_time.as_secs_f64() * 1e3,
        refresh.retrain_time.as_secs_f64() * 1e3,
        refresh.refresh_matches_retrain
    );

    if smoke {
        println!("CARDBENCH_FAST=1: smoke only, skipping BENCH_sketch.json");
        return;
    }

    // --- Model size against every other kind (standard scale). ---
    let mut sizes = Vec::new();
    for kind in EstimatorKind::ALL {
        let built = build_estimator(kind, &db, &train, &settings);
        println!("model size {:>12}: {:>10} B", kind.name(), built.model_size);
        sizes.push((kind, built.model_size));
    }
    let sketch_bytes = sizes
        .iter()
        .find(|(k, _)| *k == EstimatorKind::Sketch)
        .map_or(0, |&(_, b)| b);
    // The learned methods of paper Table 3 (query- and data-driven).
    let learned = [
        EstimatorKind::Mscn,
        EstimatorKind::LwXgb,
        EstimatorKind::LwNn,
        EstimatorKind::UaeQ,
        EstimatorKind::NeuroCardE,
        EstimatorKind::BayesCard,
        EstimatorKind::DeepDb,
        EstimatorKind::Flat,
        EstimatorKind::Uae,
    ];
    let smallest_learned = sizes
        .iter()
        .filter(|(k, _)| learned.contains(k))
        .map(|&(_, b)| b)
        .min()
        .unwrap_or(1)
        .max(1);
    let ratio = sketch_bytes as f64 / smallest_learned as f64;
    println!(
        "sketch model {sketch_bytes} B vs smallest learned {smallest_learned} B \
         (ratio {ratio:.2})"
    );

    let summary = Json::object([
        ("bench", Json::String("sketch".to_string())),
        (
            "config",
            Json::String(format!(
                "STATS default scale ({total_rows} rows, 8 tables); sketch: HLL p={}, \
                 count-min depth={} width={} (key width {}); build best-of-{reps}; \
                 latency over {subplans} connected sub-plans x {lat_reps} reps",
                sketch_cfg.hll_precision,
                sketch_cfg.cm_depth,
                sketch_cfg.cm_width,
                sketch_cfg.key_cm_width
            )),
        ),
        ("host_cores", Json::Number(cores as f64)),
        (
            "notes",
            Json::String(format!(
                "every sharded build is asserted bit-identical to the sequential scan \
                 (merge-closed integer state); on a {cores}-core host OS-thread sharding \
                 {}; model-size target: the sketch state is fixed KBs (registers + \
                 counters), {ratio:.2}x the smallest learned model here (LW-NN-class) \
                 and orders of magnitude under the MB-class data-driven models — the \
                 literal sub-1%-of-smallest-learned bar is unreachable for any \
                 functioning sketch set at this schema width, so the ratio is recorded \
                 instead; refresh-in-place streams the temporal delta O(1)/row and is \
                 asserted to land on the exact retrained state",
                if cores == 1 {
                    "cannot exceed 1.0x (speedups recorded for completeness; see the \
                     same caveat in BENCH_harness.json)"
                        .to_string()
                } else {
                    format!("targets >=1.5x at 4 shards (measured {speedup4:.2}x)")
                }
            )),
        ),
        (
            "headline",
            Json::object([
                ("build_speedup_4_shards", Json::Number(speedup4)),
                ("one_core_host", Json::Bool(cores == 1)),
                ("sharded_build_bit_identical", Json::Bool(true)),
                ("sketch_model_bytes", Json::Number(sketch_bytes as f64)),
                (
                    "smallest_learned_model_bytes",
                    Json::Number(smallest_learned as f64),
                ),
                ("model_ratio_vs_smallest_learned", Json::Number(ratio)),
                ("estimate_p50_us", Json::Number(p50 as f64 / 1e3)),
                ("estimate_p99_us", Json::Number(p99 as f64 / 1e3)),
                (
                    "refresh_matches_retrain",
                    Json::Bool(refresh.refresh_matches_retrain),
                ),
                (
                    "refresh_speedup_vs_retrain",
                    Json::Number(
                        refresh.retrain_time.as_secs_f64()
                            / refresh.refresh_time.as_secs_f64().max(1e-9),
                    ),
                ),
            ]),
        ),
        (
            "build",
            Json::Array(
                build
                    .iter()
                    .map(|p| {
                        Json::object([
                            ("shards", Json::Number(p.shards as f64)),
                            ("seconds", Json::Number(p.secs)),
                            ("rows_per_sec", Json::Number(p.rows_per_sec)),
                            ("speedup_vs_sequential", Json::Number(p.speedup)),
                            ("digest_matches", Json::Bool(p.digest_matches)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "estimate_latency_ns",
            Json::object([
                (
                    "sketch",
                    Json::object([
                        ("p50", Json::Number(p50 as f64)),
                        ("p99", Json::Number(p99 as f64)),
                    ]),
                ),
                (
                    "postgres",
                    Json::object([
                        ("p50", Json::Number(pg_p50 as f64)),
                        ("p99", Json::Number(pg_p99 as f64)),
                    ]),
                ),
            ]),
        ),
        ("refresh", refresh_json(&refresh)),
        (
            "model_sizes",
            Json::Array(
                sizes
                    .iter()
                    .map(|&(k, b)| {
                        Json::object([
                            ("kind", Json::String(k.name().to_string())),
                            ("bytes", Json::Number(b as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sketch.json");
    std::fs::write(&path, summary.pretty()).expect("write BENCH_sketch.json");
    println!("wrote {}", path.display());
}
