//! Serving benchmarks: sustained throughput and tail latency of the
//! concurrent estimation service at 1/4/16/64 sessions, cross-session
//! coalescing vs per-session-sequential estimation, on the STATS-CEB
//! analog workload with batched ML estimators.
//!
//! Two phases per configuration, per the load-generation split the
//! serving literature settled on:
//!
//! 1. **Closed loop** — every session replays the workload back-to-back;
//!    completed queries / wall time is the sustained QPS. Closed loops
//!    understate tail latency (clients slow down with the server), so
//!    latency does not come from this phase.
//! 2. **Open loop** — deterministic Poisson-free arrivals at 0.7× the
//!    measured sustained rate (`t_i = i / rate`, round-robin across
//!    sessions); per-query latency is measured from the *scheduled*
//!    arrival, so queueing delay counts (no coordinated omission).
//!    p50/p95/p99 come from exact sample percentiles.
//!
//! Writes `BENCH_serve.json` at the repo root. `CARDBENCH_FAST=1` runs a
//! tiny-data smoke (one estimator, 4 sessions) and skips the JSON.

use std::path::PathBuf;
use std::sync::Arc;

use cardbench_support::json::Json;

use cardbench_datagen::{stats_catalog, StatsConfig};
use cardbench_engine::{CostModel, Database, TrueCardService};
use cardbench_estimators::lw::TrainingSet;
use cardbench_estimators::{CardEst, EstimatorKind};
use cardbench_harness::{build_estimator, EstimatorSettings};
use cardbench_metrics::percentile;
use cardbench_serve::{run_load, LoadConfig, LoadReport, ServeConfig, Server};
use cardbench_workload::{stats_ceb, training_workload, Workload, WorkloadConfig};

/// One measured (sessions, mode) point.
struct RunPoint {
    sessions: usize,
    mode: &'static str,
    closed: LoadReport,
    arrival_qps: f64,
    open: LoadReport,
}

fn start_server(
    db: &Arc<Database>,
    truth: &Arc<TrueCardService>,
    est: &Arc<dyn CardEst>,
    sessions: usize,
    sequential: bool,
) -> Arc<Server> {
    Arc::new(Server::start(
        Arc::clone(db),
        Arc::clone(truth),
        Arc::clone(est),
        CostModel::default(),
        ServeConfig {
            max_sessions: sessions,
            sequential,
            ..ServeConfig::default()
        },
    ))
}

/// Every fault the service surfaces must be typed, every query must
/// finish, and nothing may be rejected — the bench runs under budget.
fn guard(label: &str, r: &LoadReport) {
    assert!(r.completed > 0, "{label}: no queries completed");
    assert_eq!(r.unattributed, 0, "{label}: unattributed faults");
    assert_eq!(r.rejected, 0, "{label}: unexpected admission rejections");
    assert_eq!(r.failed, 0, "{label}: queries failed to plan");
}

/// Closed-loop saturation then open-loop at 0.7× the sustained rate.
fn run_point(
    db: &Arc<Database>,
    truth: &Arc<TrueCardService>,
    est: &Arc<dyn CardEst>,
    wl: &Workload,
    sessions: usize,
    sequential: bool,
) -> RunPoint {
    let mode = if sequential {
        "sequential"
    } else {
        "coalesced"
    };
    // Replays sized so every phase issues at least ~1k queries: phases
    // shorter than ~100ms are scheduler-jitter measurements, not
    // throughput measurements.
    let replays = 1024usize.div_ceil(sessions * wl.queries.len()).max(1);
    let cfg = LoadConfig {
        sessions,
        arrival_qps: None,
        replays,
        deadline: None,
    };
    let server = start_server(db, truth, est, sessions, sequential);
    let closed = run_load(&server, wl, &cfg);
    guard(&format!("{mode}/{sessions} closed"), &closed);
    let arrival_qps = (closed.qps * 0.7).max(1.0);
    let open = run_load(
        &server,
        wl,
        &LoadConfig {
            arrival_qps: Some(arrival_qps),
            ..cfg
        },
    );
    guard(&format!("{mode}/{sessions} open"), &open);
    RunPoint {
        sessions,
        mode,
        closed,
        arrival_qps,
        open,
    }
}

fn main() {
    let smoke = std::env::var("CARDBENCH_FAST").is_ok_and(|v| v == "1");
    let session_counts: &[usize] = if smoke { &[4] } else { &[1, 4, 16, 64] };

    let stats = if smoke {
        StatsConfig::tiny(3)
    } else {
        StatsConfig {
            seed: 3,
            ..StatsConfig::default()
        }
    };
    let db = Arc::new(Database::new(stats_catalog(&stats)));
    let wl_cfg = WorkloadConfig {
        seed: 5,
        templates: if smoke { 4 } else { 12 },
        queries: if smoke { 8 } else { 24 },
        max_tables: if smoke { 3 } else { 8 },
        max_predicates: 4,
        retries: 30,
        max_subplan_card: 1e7,
    };
    let wl = stats_ceb(&db, &wl_cfg);
    assert!(!wl.queries.is_empty(), "serve bench workload is empty");
    let settings = EstimatorSettings::fast(3);
    let (train_qs, train_cards) = training_workload(&db, 120, 5, 3 ^ 0x7a);
    let train = TrainingSet {
        queries: train_qs,
        cards: train_cards,
    };

    // The batched-estimator family: coalescing has leverage exactly when
    // `estimate_batch` amortizes real per-call work, so the spread runs
    // from the heaviest batched models (autoregressive UAE/NeuroCard^E,
    // where dedup + batching shine) down to MSCN and the SPN family.
    let ml_kinds: &[EstimatorKind] = if smoke {
        &[EstimatorKind::Mscn]
    } else {
        &[
            EstimatorKind::Mscn,
            EstimatorKind::Uae,
            EstimatorKind::NeuroCardE,
            EstimatorKind::DeepDb,
        ]
    };

    // One truth cache for the whole bench (truth is estimator-free) and
    // one warmup pass so no timed phase pays exact-execution or cold
    // engine memos — both modes then compete on estimation + planning.
    let truth = Arc::new(TrueCardService::new());

    let mut method_entries: Vec<Json> = Vec::new();
    for &kind in ml_kinds {
        let built = build_estimator(kind, &db, &train, &settings);
        let est: Arc<dyn CardEst> = Arc::from(built.est);
        assert!(
            est.batch_leverage(),
            "{}: serve bench expects a batched estimator",
            kind.name()
        );
        {
            let server = start_server(&db, &truth, &est, 1, true);
            let warm = run_load(
                &server,
                &wl,
                &LoadConfig {
                    sessions: 1,
                    arrival_qps: None,
                    replays: 1,
                    deadline: None,
                },
            );
            guard(&format!("{} warmup", kind.name()), &warm);
        }

        let mut points: Vec<RunPoint> = Vec::new();
        for &sessions in session_counts {
            for sequential in [true, false] {
                points.push(run_point(&db, &truth, &est, &wl, sessions, sequential));
            }
        }

        let runs: Vec<Json> = points
            .iter()
            .map(|p| {
                let lat = &p.open.latencies;
                let (p50, p95, p99) = (
                    percentile(lat, 0.50),
                    percentile(lat, 0.95),
                    percentile(lat, 0.99),
                );
                println!(
                    "{:>8} {:>10} x{:<2}: closed {:>7.1} qps | open @{:>7.1} qps  p50 {:.4}s  p95 {:.4}s  p99 {:.4}s",
                    kind.name(),
                    p.mode,
                    p.sessions,
                    p.closed.qps,
                    p.arrival_qps,
                    p50,
                    p95,
                    p99,
                );
                Json::object([
                    ("sessions", Json::Number(p.sessions as f64)),
                    ("mode", Json::String(p.mode.to_string())),
                    ("closed_loop_qps", Json::Number(p.closed.qps)),
                    ("open_loop_arrival_qps", Json::Number(p.arrival_qps)),
                    ("open_loop_qps", Json::Number(p.open.qps)),
                    ("open_loop_completed", Json::Number(p.open.completed as f64)),
                    ("p50_secs", Json::Number(p50)),
                    ("p95_secs", Json::Number(p95)),
                    ("p99_secs", Json::Number(p99)),
                ])
            })
            .collect();

        // Headline ratio per session count: coalesced / sequential
        // sustained QPS.
        let speedups: Vec<Json> = session_counts
            .iter()
            .map(|&n| {
                let qps_of = |mode: &str| {
                    points
                        .iter()
                        .find(|p| p.sessions == n && p.mode == mode)
                        .map(|p| p.closed.qps)
                        .unwrap_or(f64::NAN)
                };
                let ratio = qps_of("coalesced") / qps_of("sequential");
                println!(
                    "{:>8} sessions={n:<2}: coalesced/sequential sustained QPS = {ratio:.2}x",
                    kind.name()
                );
                Json::object([
                    ("sessions", Json::Number(n as f64)),
                    ("coalesced_over_sequential_qps", Json::Number(ratio)),
                ])
            })
            .collect();

        method_entries.push(Json::object([
            ("method", Json::String(kind.name().to_string())),
            ("runs", Json::Array(runs)),
            ("throughput_speedup", Json::Array(speedups)),
        ]));
    }

    if smoke {
        println!("smoke mode (CARDBENCH_FAST=1): not writing BENCH_serve.json");
        return;
    }
    let summary = Json::object([
        ("bench", Json::String("serve".to_string())),
        (
            "setup",
            Json::String(format!(
                "STATS-CEB analog workload ({} queries, ≤8 tables) on STATS data at the \
                 default 0.02 benchmark scale; truth cache and engine memos warmed before \
                 timing; closed loop = sustained QPS, open loop at 0.7× sustained rate with \
                 deterministic arrivals = tail latency measured from scheduled arrival",
                wl.queries.len()
            )),
        ),
        (
            "notes",
            Json::String(
                "coalescing leverage scales with per-estimate inference cost: the heavy \
                 autoregressive NeuroCard^E compounds (3.8x at 4 sessions to 21x at 64, \
                 with the sequential tail collapsing from multi-second p99 to ~0.1s), \
                 MSCN/UAE win steadily, and the cheap SPN fanout family (DeepDB, \
                 ~0.1ms/query) wins only marginally since there is little per-call work \
                 to amortize; a lone session always pays the queue hop, which is what \
                 the sequential mode is for"
                    .to_string(),
            ),
        ),
        (
            "host_caveat",
            Json::String(
                "single shared-core host: session threads, the coalescer drainer, and \
                 estimator inference contend for the same CPU, so absolute QPS understates a \
                 real server; the coalesced-vs-sequential ratios are the signal"
                    .to_string(),
            ),
        ),
        ("methods", Json::Array(method_entries)),
    ]);
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    std::fs::write(&path, summary.pretty()).expect("write BENCH_serve.json");
    println!("wrote {}", path.display());
}
