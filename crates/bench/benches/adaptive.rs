//! Adaptive-estimation benchmark: accuracy as a function of queries
//! seen, and recovery after a temporal data shift.
//!
//! For each measured inner estimator kind the drift experiment runs
//! four strictly sequential passes over one workload sharing a single
//! feedback store (train on the pre-cutoff STATS half, stream twice,
//! bulk-insert the post-cutoff rows, stream twice more):
//!
//! 1. **warmup** — cold store; feedback accumulates within the pass, so
//!    the per-quartile medians *are* the learning curve;
//! 2. **replay** — warm store on unchanged data; exact overrides pin
//!    every sub-plan to its observed truth (median Q-Error 1.0);
//! 3. **post-shift** — the bulk insert invalidates the accumulated
//!    truths; stale overrides err until re-observed;
//! 4. **recovered** — the refreshed store is oracle-accurate again.
//!
//! A final differential pass asserts the feedback-off path is
//! bit-identical to the parallel harness — adaptivity is strictly
//! opt-in. Writes `BENCH_adaptive.json` at the repo root;
//! `CARDBENCH_FAST=1` runs a tiny smoke and skips the JSON.

use std::path::PathBuf;
use std::sync::Arc;

use cardbench_support::json::Json;

use cardbench_datagen::StatsConfig;
use cardbench_engine::{CostModel, TrueCardService};
use cardbench_estimators::lw::TrainingSet;
use cardbench_estimators::EstimatorKind;
use cardbench_feedback::{FeedbackConfig, FeedbackEst, FeedbackStore};
use cardbench_harness::{
    build_estimator, median_p_error, median_q_error, run_adaptive_experiment, run_workload,
    run_workload_adaptive, AdaptiveExperiment, Bench, BenchConfig, EstimatorSettings, QueryRun,
    RunOptions,
};
use cardbench_workload::{stats_ceb, Workload, WorkloadConfig};

/// The measured inner kinds: one traditional baseline, one sampler, one
/// learned data-driven model — the feedback wrapper must lift all three.
const KINDS: [EstimatorKind; 3] = [
    EstimatorKind::Postgres,
    EstimatorKind::UniSample,
    EstimatorKind::BayesCard,
];

/// Median Q-Error of each in-order quartile of a pass: the within-pass
/// learning curve (later quartiles planned with more observations).
fn quartile_curve(runs: &[QueryRun]) -> Vec<f64> {
    let n = runs.len().max(1);
    let step = n.div_ceil(4);
    runs.chunks(step).map(median_q_error).collect()
}

fn pass_json(runs: &[QueryRun]) -> Json {
    Json::object([
        ("median_q_error", Json::Number(median_q_error(runs))),
        ("median_p_error", Json::Number(median_p_error(runs))),
        (
            "completed",
            Json::Number(runs.iter().filter(|r| r.completed()).count() as f64),
        ),
    ])
}

fn experiment_json(exp: &AdaptiveExperiment, baseline_q: f64, baseline_p: f64) -> Json {
    Json::object([
        ("kind", Json::String(exp.kind.name().to_string())),
        (
            "no_feedback",
            Json::object([
                ("median_q_error", Json::Number(baseline_q)),
                ("median_p_error", Json::Number(baseline_p)),
            ]),
        ),
        (
            "warmup_quartile_median_q_errors",
            Json::Array(
                quartile_curve(&exp.warmup)
                    .into_iter()
                    .map(Json::Number)
                    .collect(),
            ),
        ),
        ("warmup", pass_json(&exp.warmup)),
        ("replay", pass_json(&exp.replay)),
        ("post_shift", pass_json(&exp.post_shift)),
        ("recovered", pass_json(&exp.recovered)),
        (
            "store",
            Json::object([
                ("observations", Json::Number(exp.stats.observations as f64)),
                ("overrides", Json::Number(exp.stats.overrides as f64)),
                ("corrections", Json::Number(exp.stats.corrections as f64)),
                (
                    "exact_entries",
                    Json::Number(exp.stats.exact_entries as f64),
                ),
            ]),
        ),
    ])
}

/// Feedback-off differential: the sequential adaptive loop with a
/// disabled wrapper must be bit-identical (non-timing fields) to the
/// parallel harness on the tier-1 benchmark.
fn assert_feedback_off_bit_identical() {
    let b = Bench::build(BenchConfig::fast(19));
    let store = Arc::new(FeedbackStore::default());
    let built = build_estimator(
        EstimatorKind::Postgres,
        &b.stats_db,
        &b.stats_train,
        &b.config.settings,
    );
    let wrapped = FeedbackEst::new(built.est, Arc::clone(&store), false);
    let truth = TrueCardService::new();
    let cost = CostModel::default();
    let adaptive = run_workload_adaptive(
        &b.stats_db,
        &b.stats_wl,
        &wrapped,
        &store,
        &truth,
        &cost,
        &RunOptions::default(),
    );
    let baseline = run_workload(&b.stats_db, &b.stats_wl, wrapped.inner(), &truth, &cost);
    assert_eq!(adaptive.len(), baseline.len());
    for (a, r) in adaptive.iter().zip(&baseline) {
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(a.id, r.id);
        assert_eq!(
            bits(&a.sub_est_cards),
            bits(&r.sub_est_cards),
            "Q{}: feedback-off estimates diverge from the harness",
            a.id
        );
        assert_eq!(bits(&a.q_errors), bits(&r.q_errors), "Q{}", a.id);
        assert_eq!(a.p_error.to_bits(), r.p_error.to_bits(), "Q{}", a.id);
        assert_eq!(a.result_rows, r.result_rows, "Q{}", a.id);
    }
    assert_eq!(store.stats().hits, 0, "disabled wrapper resolved a hit");
}

fn main() {
    let smoke = std::env::var("CARDBENCH_FAST").is_ok_and(|v| v == "1");
    let seed = 13;
    let stats_cfg = if smoke {
        StatsConfig::tiny(seed)
    } else {
        StatsConfig {
            seed,
            ..StatsConfig::default()
        }
    };
    // The drift experiment builds its own (pre-cutoff) database; the
    // workload only needs the shared schema, so generate it on the full
    // catalog.
    let db = cardbench_engine::Database::new(cardbench_datagen::stats_catalog(&stats_cfg));
    let wl_cfg = WorkloadConfig {
        seed: 29,
        templates: if smoke { 4 } else { 8 },
        queries: if smoke { 8 } else { 24 },
        max_tables: if smoke { 3 } else { 4 },
        max_predicates: 4,
        retries: 30,
        max_subplan_card: 1e7,
    };
    let wl: Workload = stats_ceb(&db, &wl_cfg);
    assert!(!wl.queries.is_empty(), "adaptive workload is empty");

    let settings = if smoke {
        EstimatorSettings::fast(seed)
    } else {
        EstimatorSettings::standard(seed)
    };
    let train = TrainingSet::default();
    let cost = CostModel::default();
    let opts = RunOptions::default();

    // Raw-estimator reference: the parallel harness on the full data,
    // no feedback — what each kind does alone on this workload.
    let truth = TrueCardService::new();
    let mut baselines = Vec::new();
    for kind in KINDS {
        let built = build_estimator(kind, &db, &train, &settings);
        let runs = run_workload(&db, &wl, built.est.as_ref(), &truth, &cost);
        baselines.push((kind, median_q_error(&runs), median_p_error(&runs)));
    }

    let mut experiments = Vec::new();
    for kind in KINDS {
        let exp = run_adaptive_experiment(
            &stats_cfg,
            &wl,
            kind,
            &train,
            &settings,
            &cost,
            FeedbackConfig::default(),
            &opts,
        );
        let (qw, qr, qp, qc) = (
            median_q_error(&exp.warmup),
            median_q_error(&exp.replay),
            median_q_error(&exp.post_shift),
            median_q_error(&exp.recovered),
        );
        let (_, qb, _) = baselines
            .iter()
            .find(|(k, _, _)| *k == kind)
            .copied()
            .expect("baseline measured for every kind");
        println!(
            "{:>12}: no-feedback {qb:>8.3} | warmup {qw:>8.3} | replay {qr:>8.3} | post-shift \
             {qp:>8.3} | recovered {qc:>8.3} | curve {:?}",
            exp.kind.name(),
            quartile_curve(&exp.warmup)
                .iter()
                .map(|q| (q * 1000.0).round() / 1000.0)
                .collect::<Vec<_>>(),
        );
        // The headline contracts: accuracy improves with queries seen
        // (warm replay beats the cold pass and is oracle-exact), and the
        // store recovers from the temporal shift by re-observation.
        assert!(
            qr <= qw + 1e-9,
            "{}: replay worse than warmup",
            exp.kind.name()
        );
        assert!(
            qr <= qb + 1e-9,
            "{}: feedback never beat the raw estimator",
            exp.kind.name()
        );
        assert!(
            (qr - 1.0).abs() < 1e-9,
            "{}: warm replay not oracle-exact",
            exp.kind.name()
        );
        assert!(
            (qc - 1.0).abs() < 1e-9,
            "{}: no recovery after the temporal shift",
            exp.kind.name()
        );
        assert!(
            qc <= qp + 1e-9,
            "{}: recovery worse than the spike",
            exp.kind.name()
        );
        assert!(exp.stats.observations > 0 && exp.stats.overrides > 0);
        experiments.push(exp);
    }

    assert_feedback_off_bit_identical();
    println!("feedback-off differential: bit-identical to the parallel harness");

    if smoke {
        println!("CARDBENCH_FAST=1: smoke only, skipping BENCH_adaptive.json");
        return;
    }

    let worst_no_feedback = baselines
        .iter()
        .map(|&(_, q, _)| q)
        .fold(f64::NAN, f64::max);
    let worst_warmup = experiments
        .iter()
        .map(|e| median_q_error(&e.warmup))
        .fold(f64::NAN, f64::max);
    let worst_spike = experiments
        .iter()
        .map(|e| median_q_error(&e.post_shift))
        .fold(f64::NAN, f64::max);
    let summary = Json::object([
        ("bench", Json::String("adaptive".to_string())),
        (
            "config",
            Json::String(format!(
                "STATS default scale, {} queries x 4 sequential passes per kind; \
                 pre-cutoff training, temporal bulk insert between passes 2 and 3; \
                 feedback store: exact overrides + clamped template corrections \
                 (warmup {}, clamp {})",
                wl.queries.len(),
                FeedbackConfig::default().warmup,
                FeedbackConfig::default().max_correction,
            )),
        ),
        (
            "notes",
            Json::String(
                "no_feedback is the raw estimator through the parallel harness on the same \
                 workload (the accuracy floor feedback lifts); \
                 warmup_quartile_median_q_errors is the within-pass learning curve (the \
                 store warms as the pass streams); replay and recovered medians are \
                 asserted oracle-exact (1.0) because every executed sub-plan's truth \
                 overrides the inner estimate; post_shift shows the stale-feedback spike \
                 the recovery pass repairs. The feedback-off differential asserts the \
                 adaptive runner with a disabled wrapper is bit-identical to the parallel \
                 harness — adaptivity is strictly opt-in"
                    .to_string(),
            ),
        ),
        (
            "headline",
            Json::object([
                (
                    "worst_no_feedback_median_q_error",
                    Json::Number(worst_no_feedback),
                ),
                ("worst_cold_median_q_error", Json::Number(worst_warmup)),
                ("warm_replay_median_q_error", Json::Number(1.0)),
                ("worst_post_shift_median_q_error", Json::Number(worst_spike)),
                ("recovered_median_q_error", Json::Number(1.0)),
                ("feedback_off_bit_identical", Json::Bool(true)),
            ]),
        ),
        (
            "kinds",
            Json::Array(
                experiments
                    .iter()
                    .zip(&baselines)
                    .map(|(e, &(_, qb, pb))| experiment_json(e, qb, pb))
                    .collect(),
            ),
        ),
    ]);
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_adaptive.json");
    std::fs::write(&path, summary.pretty()).expect("write BENCH_adaptive.json");
    println!("wrote {}", path.display());
}
