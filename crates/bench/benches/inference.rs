//! Per-estimator inference latency (the Figure 3 latency axis): one
//! representative multi-join sub-plan query per estimator.

use cardbench_support::criterion::Criterion;
use cardbench_support::{criterion_group, criterion_main};

use cardbench_engine::TrueCardService;
use cardbench_estimators::EstimatorKind;
use cardbench_harness::{build_estimator, Bench, BenchConfig};
use cardbench_query::{SubPlanQuery, TableMask};

fn bench_inference(c: &mut Criterion) {
    let bench = Bench::build(BenchConfig::fast(5));
    let wq = bench
        .stats_wl
        .queries
        .iter()
        .max_by_key(|q| q.query.table_count())
        .unwrap();
    let sub = SubPlanQuery {
        mask: TableMask::full(wq.query.table_count()),
        query: wq.query.clone(),
    };
    let mut group = c.benchmark_group("inference_latency");
    group.sample_size(20);
    for kind in [
        EstimatorKind::Postgres,
        EstimatorKind::MultiHist,
        EstimatorKind::UniSample,
        EstimatorKind::WjSample,
        EstimatorKind::PessEst,
        EstimatorKind::Mscn,
        EstimatorKind::LwXgb,
        EstimatorKind::LwNn,
        EstimatorKind::BayesCard,
        EstimatorKind::DeepDb,
        EstimatorKind::Flat,
        EstimatorKind::NeuroCardE,
    ] {
        let built = build_estimator(
            kind,
            &bench.stats_db,
            &bench.stats_train,
            &bench.config.settings,
        );
        group.bench_function(kind.name(), |b| {
            b.iter(|| built.est.estimate(&bench.stats_db, &sub))
        });
    }
    // The oracle for reference.
    let truth = TrueCardService::new();
    group.bench_function("TrueCard(uncached)", |b| {
        b.iter(|| {
            // Bypass the cache by reconstructing the service per batch is
            // too heavy; measure the cached path, which is what the
            // harness pays after the first query.
            truth.cardinality(&bench.stats_db, &sub.query).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
