//! Planner micro-benchmarks: DP join enumeration and the P-Error
//! computation path (optimize twice + cost twice).

use cardbench_support::criterion::Criterion;
use cardbench_support::{criterion_group, criterion_main};

use cardbench_engine::{exact_cardinality, optimize, CardMap, CostModel, TrueCardService};
use cardbench_harness::{Bench, BenchConfig};
use cardbench_metrics::p_error;
use cardbench_query::{connected_subsets, BoundQuery, SubPlanQuery};

fn bench_planning(c: &mut Criterion) {
    let bench = Bench::build(BenchConfig::fast(8));
    let wq = bench
        .stats_wl
        .queries
        .iter()
        .max_by_key(|q| q.query.table_count())
        .unwrap();
    let db = &bench.stats_db;
    let bound = BoundQuery::bind(&wq.query, db.catalog()).unwrap();
    let cost = CostModel::default();
    let mut cards = CardMap::new();
    for mask in connected_subsets(&wq.query) {
        let sp = SubPlanQuery::project(&wq.query, mask);
        cards.insert(mask, exact_cardinality(db, &sp.query).unwrap());
    }
    c.bench_function(
        format!("dp_optimize_{}_tables", wq.query.table_count()),
        |b| b.iter(|| optimize(&wq.query, &bound, db, &cards, &cost)),
    );
    c.bench_function("p_error_path", |b| {
        b.iter(|| p_error(db, &cost, &wq.query, &bound, &cards, &cards))
    });
    let truth = TrueCardService::new();
    c.bench_function("subplan_space_truth_cached", |b| {
        b.iter(|| {
            connected_subsets(&wq.query)
                .into_iter()
                .map(|m| {
                    let sp = SubPlanQuery::project(&wq.query, m);
                    truth.cardinality(db, &sp.query).unwrap()
                })
                .sum::<f64>()
        })
    });
}

criterion_group!(benches, bench_planning);
criterion_main!(benches);
