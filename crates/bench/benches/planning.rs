//! Plan-search benchmarks: the dense topology-driven DP against the
//! reference `HashMap`+clone DP on 6–8-table STATS-shaped star queries,
//! and the shared-topology P-Error path against its
//! double-enumeration predecessor. Writes `BENCH_planning.json` at the
//! repo root with medians, speedups, and the topology-cache hit rate so
//! the amortization claim stays reproducible. `CARDBENCH_FAST=1` runs a
//! 1-sample smoke on the smallest query and skips the JSON.

use std::path::PathBuf;

use cardbench_support::criterion::Criterion;
use cardbench_support::json::Json;

use cardbench_datagen::{stats_catalog, StatsConfig};
use cardbench_engine::{
    optimize_reference, optimize_with, plan_cost, subplan_true_cards, CardMap, CostModel, Database,
};
use cardbench_metrics::p_error;
use cardbench_query::{BoundQuery, JoinEdge, JoinQuery, Predicate, Region, TableMask};

/// STATS-shaped star query on `tables` ∈ 6..=8 tables: `posts` is the
/// hub with five FK children; 7 adds the `users` arm, 8 extends it with
/// `badges` (a two-hop arm, as STATS-CEB queries have).
fn star_query(tables: usize) -> JoinQuery {
    let mut q = JoinQuery {
        tables: vec![
            "posts".into(),
            "comments".into(),
            "votes".into(),
            "postHistory".into(),
            "postLinks".into(),
            "tags".into(),
        ],
        joins: vec![
            JoinEdge::new(0, "Id", 1, "PostId"),
            JoinEdge::new(0, "Id", 2, "PostId"),
            JoinEdge::new(0, "Id", 3, "PostId"),
            JoinEdge::new(0, "Id", 4, "PostId"),
            JoinEdge::new(0, "Id", 5, "ExcerptPostId"),
        ],
        predicates: vec![
            Predicate::new(0, "Score", Region::ge(0)),
            Predicate::new(1, "Score", Region::ge(0)),
        ],
    };
    if tables >= 7 {
        q.tables.push("users".into());
        q.joins.push(JoinEdge::new(6, "Id", 0, "OwnerUserId"));
    }
    if tables >= 8 {
        q.tables.push("badges".into());
        q.joins.push(JoinEdge::new(6, "Id", 7, "UserId"));
    }
    q
}

fn median_of(c: &Criterion, id: &str) -> f64 {
    c.measurements
        .iter()
        .find(|m| m.id == id)
        .unwrap_or_else(|| panic!("no measurement {id}"))
        .median
        .as_secs_f64()
}

/// The pre-topology P-Error path: two full reference DP runs (each with
/// its own subset enumeration and cloned subtrees) plus two re-costings
/// under truth — what `p_error` did before the shared topology.
fn p_error_reference(
    db: &Database,
    cost: &CostModel,
    query: &JoinQuery,
    bound: &BoundQuery,
    est_cards: &CardMap,
    true_cards: &CardMap,
) -> f64 {
    let (_, plan_e) = optimize_reference(query, bound, db, est_cards, cost, false);
    let (_, plan_t) = optimize_reference(query, bound, db, true_cards, cost, false);
    let rows_t = |m: TableMask| true_cards.rows(m);
    let ppc_e = plan_cost(&plan_e, db, bound, cost, &rows_t);
    let ppc_t = plan_cost(&plan_t, db, bound, cost, &rows_t);
    if ppc_t <= 0.0 {
        1.0
    } else {
        ppc_e / ppc_t
    }
}

fn main() {
    let smoke = std::env::var("CARDBENCH_FAST").is_ok_and(|v| v == "1");
    let table_counts: &[usize] = if smoke { &[6] } else { &[6, 7, 8] };
    let samples = if smoke { 1 } else { 20 };

    // Plan search never touches row data (only catalog row counts), so
    // the test-tier dataset suffices at every table count.
    let db = &Database::new(stats_catalog(&StatsConfig::tiny(3)));
    let cost = CostModel::default();

    let mut c = Criterion::default();
    let mut dp_entries: Vec<Json> = Vec::new();
    let mut cache_entries: Vec<Json> = Vec::new();

    for &nt in table_counts {
        let q = star_query(nt);
        let bound = BoundQuery::bind(&q, db.catalog()).unwrap();
        let truths = subplan_true_cards(db, &q).expect("enumeration succeeds");
        let subplans = truths.len();
        let mut true_cards = CardMap::new();
        let mut est_cards = CardMap::new();
        for &(mask, card) in &truths {
            true_cards.insert(mask, card);
            // A deterministic mask-dependent misestimate so the P-Error
            // path plans two genuinely different queries.
            est_cards.insert(mask, (card + 1.0) * (1.0 + (mask.0 % 7) as f64));
        }

        // Correctness guards: dense and reference DPs must agree
        // bit-for-bit, and the shared-topology P-Error must equal the
        // double-enumeration one, before we time either.
        let (hits0, misses0) = db.topology_cache_stats();
        for cards in [&true_cards, &est_cards] {
            let dense = optimize_with(&q, &bound, db, cards, &cost, false);
            let (ref_cost, ref_plan) = optimize_reference(&q, &bound, db, cards, &cost, false);
            assert!(
                dense.structurally_identical(&ref_plan),
                "{nt} tables: dense and reference plans diverged"
            );
            let recosted = plan_cost(&dense, db, &bound, &cost, &|m| cards.rows(m));
            assert_eq!(recosted.to_bits(), ref_cost.to_bits(), "{nt} tables: cost");
        }
        let pe_new = p_error(db, &cost, &q, &bound, &est_cards, &true_cards);
        let pe_old = p_error_reference(db, &cost, &q, &bound, &est_cards, &true_cards);
        assert_eq!(
            pe_new.to_bits(),
            pe_old.to_bits(),
            "{nt} tables: P-Error diverged (new {pe_new} vs reference {pe_old})"
        );

        let mut group = c.benchmark_group(format!("dp_optimize_{nt}_tables"));
        group.sample_size(samples);
        group.bench_function("reference", |b| {
            b.iter(|| optimize_reference(&q, &bound, db, &true_cards, &cost, false))
        });
        group.bench_function("dense", |b| {
            b.iter(|| optimize_with(&q, &bound, db, &true_cards, &cost, false))
        });
        group.finish();

        if nt == *table_counts.last().expect("non-empty") {
            let mut group = c.benchmark_group("p_error_path");
            group.sample_size(samples);
            group.bench_function("reference", |b| {
                b.iter(|| p_error_reference(db, &cost, &q, &bound, &est_cards, &true_cards))
            });
            group.bench_function("shared_topology", |b| {
                b.iter(|| p_error(db, &cost, &q, &bound, &est_cards, &true_cards))
            });
            group.finish();
        }

        let (hits1, misses1) = db.topology_cache_stats();
        let (hits, misses) = (hits1 - hits0, misses1 - misses0);
        let probes = hits + misses;
        let hit_rate = if probes == 0 {
            0.0
        } else {
            hits as f64 / probes as f64
        };
        println!(
            "topology cache at {nt} tables: {hits} hits / {misses} misses ({:.4} hit rate)",
            hit_rate
        );
        cache_entries.push(Json::object([
            ("tables", Json::Number(nt as f64)),
            ("hits", Json::Number(hits as f64)),
            ("misses", Json::Number(misses as f64)),
            ("hit_rate", Json::Number(hit_rate)),
        ]));

        let reference = median_of(&c, &format!("dp_optimize_{nt}_tables/reference"));
        let dense = median_of(&c, &format!("dp_optimize_{nt}_tables/dense"));
        let speedup = reference / dense;
        println!(
            "dp_optimize {nt} tables ({subplans:>3} sub-plans): reference {reference:.9}s  dense {dense:.9}s  speedup {speedup:.2}x"
        );
        dp_entries.push(Json::object([
            ("tables", Json::Number(nt as f64)),
            ("subplans", Json::Number(subplans as f64)),
            ("reference_median_secs", Json::Number(reference)),
            ("dense_median_secs", Json::Number(dense)),
            ("speedup", Json::Number(speedup)),
        ]));
    }

    let pe_ref = median_of(&c, "p_error_path/reference");
    let pe_shared = median_of(&c, "p_error_path/shared_topology");
    let pe_speedup = pe_ref / pe_shared;
    println!(
        "p_error_path: reference {pe_ref:.9}s  shared-topology {pe_shared:.9}s  speedup {pe_speedup:.2}x"
    );

    if smoke {
        println!("smoke mode (CARDBENCH_FAST=1): not writing BENCH_planning.json");
        return;
    }
    let summary = Json::object([
        ("bench", Json::String("planning".to_string())),
        (
            "setup",
            Json::String(
                "STATS-shaped star queries (posts hub + users/badges arm) over the test-tier \
                 STATS catalog; reference = HashMap DP with cloned subtrees and per-call subset \
                 enumeration, dense = cached JoinTopology + Vec-indexed DP cells"
                    .to_string(),
            ),
        ),
        ("dp_optimize", Json::Array(dp_entries)),
        (
            "p_error_path",
            Json::object([
                ("reference_median_secs", Json::Number(pe_ref)),
                ("shared_topology_median_secs", Json::Number(pe_shared)),
                ("speedup", Json::Number(pe_speedup)),
            ]),
        ),
        ("topology_cache", Json::Array(cache_entries)),
    ]);
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_planning.json");
    std::fs::write(&path, summary.pretty()).expect("write BENCH_planning.json");
    println!("wrote {}", path.display());
}
