//! Service-level chaos benchmark: goodput and tail latency of the
//! estimation service under injected faults, and what each self-healing
//! layer buys.
//!
//! Four phases, each a fresh server on the same workload:
//!
//! 1. **baseline** — no chaos; the breaker (on by default) must stay
//!    closed and observation-only.
//! 2. **storm, breaker off** — a permanent estimator fault storm: every
//!    admitted call pays the storm stall before hard-faulting, so every
//!    query is *failed-then-degraded* (the fallback answers, but only
//!    after the doomed call's latency is paid).
//! 3. **storm, breaker on** — the same storm behind the circuit
//!    breaker: after `min_samples` slots the breaker opens and slots are
//!    *breaker-shorted* to the fallback without the doomed call. The
//!    headline comparison is phase 3's shorted p99 vs phase 2's
//!    degraded p99.
//! 4. **deadline under slow ticks** — chaos-slowed drain ticks against a
//!    per-request deadline: slots whose deadline expired in the queue
//!    fast-fail typed (`deadline_exceeded`) instead of running doomed
//!    estimates.
//! 5. **drainer panics** — the chaos injector kills the drainer
//!    mid-tick (panic budget bounded); the watchdog must replace it
//!    every time, in-hand queries degrade typed, and goodput survives.
//!
//! Every phase asserts the service's core fault story: zero
//! unattributed faults, zero hangs, zero failed plans. Writes
//! `BENCH_chaos.json` at the repo root; `CARDBENCH_FAST=1` runs a tiny
//! smoke and skips the JSON.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use cardbench_support::json::Json;

use cardbench_datagen::{stats_catalog, StatsConfig};
use cardbench_engine::{CostModel, Database, TrueCardService};
use cardbench_estimators::postgres::PostgresEst;
use cardbench_estimators::CardEst;
use cardbench_metrics::percentile;
use cardbench_serve::{
    run_load, BreakerConfig, ChaosServeConfig, LoadConfig, LoadReport, ServeConfig, ServeStats,
    Server,
};
use cardbench_workload::{stats_ceb, Workload, WorkloadConfig};

/// One phase's merged measurements.
struct Phase {
    name: &'static str,
    report: LoadReport,
    stats: ServeStats,
}

/// Every fault must be typed and every query must finish: the service's
/// whole story is that chaos degrades answers, never correctness.
fn guard(p: &Phase) {
    let (name, r) = (p.name, &p.report);
    assert!(r.completed > 0, "{name}: no queries completed");
    assert_eq!(r.failed, 0, "{name}: queries failed to plan");
    assert_eq!(r.unattributed, 0, "{name}: unattributed faults");
    assert_eq!(r.rejected, 0, "{name}: unexpected rejections");
}

fn run_phase(
    name: &'static str,
    db: &Arc<Database>,
    truth: &Arc<TrueCardService>,
    wl: &Workload,
    serve: ServeConfig,
    load: &LoadConfig,
) -> Phase {
    let est: Arc<dyn CardEst> = Arc::new(PostgresEst::fit(db));
    let server = Arc::new(Server::start(
        Arc::clone(db),
        Arc::clone(truth),
        est,
        CostModel::default(),
        serve,
    ));
    let report = run_load(&server, wl, load);
    let stats = server.stats();
    let p = Phase {
        name,
        report,
        stats,
    };
    guard(&p);
    println!(
        "{name:>18}: {:>5} done | {:>6.1} qps | p99 {:>7.4}s | clean/shorted/degraded {}/{}/{} | \
         breaker opens {} shorted {} | retries {} | expired {} | restarts {}",
        p.report.completed,
        p.report.qps,
        percentile(&p.report.latencies, 0.99),
        p.report.clean_latencies.len(),
        p.report.shorted_latencies.len(),
        p.report.degraded_latencies.len(),
        p.stats.breaker.opens,
        p.stats.breaker.shorted_slots,
        p.stats.retries,
        p.stats.deadline_expired_slots,
        p.stats.watchdog_restarts,
    );
    p
}

fn class_json(name: &str, lat: &[f64]) -> (&'static str, Json) {
    let key: &'static str = match name {
        "clean" => "clean",
        "shorted" => "shorted",
        _ => "degraded",
    };
    (
        key,
        Json::object([
            ("count", Json::Number(lat.len() as f64)),
            ("p50_secs", Json::Number(percentile(lat, 0.50))),
            ("p99_secs", Json::Number(percentile(lat, 0.99))),
        ]),
    )
}

fn phase_json(p: &Phase) -> Json {
    Json::object([
        ("phase", Json::String(p.name.to_string())),
        ("completed", Json::Number(p.report.completed as f64)),
        ("goodput_qps", Json::Number(p.report.qps)),
        (
            "p50_secs",
            Json::Number(percentile(&p.report.latencies, 0.50)),
        ),
        (
            "p99_secs",
            Json::Number(percentile(&p.report.latencies, 0.99)),
        ),
        class_json("clean", &p.report.clean_latencies),
        class_json("shorted", &p.report.shorted_latencies),
        class_json("degraded", &p.report.degraded_latencies),
        ("est_failures", Json::Number(p.report.est_failures as f64)),
        ("unattributed", Json::Number(p.report.unattributed as f64)),
        (
            "breaker",
            Json::object([
                ("opens", Json::Number(p.stats.breaker.opens as f64)),
                ("closes", Json::Number(p.stats.breaker.closes as f64)),
                (
                    "half_opens",
                    Json::Number(p.stats.breaker.half_opens as f64),
                ),
                (
                    "shorted_slots",
                    Json::Number(p.stats.breaker.shorted_slots as f64),
                ),
                (
                    "observed_slots",
                    Json::Number(p.stats.breaker.observed_slots as f64),
                ),
            ]),
        ),
        ("retried_slots", Json::Number(p.stats.retries as f64)),
        (
            "deadline_expired_slots",
            Json::Number(p.stats.deadline_expired_slots as f64),
        ),
        (
            "watchdog_restarts",
            Json::Number(p.stats.watchdog_restarts as f64),
        ),
        (
            "chaos_panics",
            Json::Number(f64::from(p.stats.chaos_panics)),
        ),
    ])
}

fn main() {
    let smoke = std::env::var("CARDBENCH_FAST").is_ok_and(|v| v == "1");
    let sessions = if smoke { 4 } else { 8 };
    let stall = Duration::from_millis(if smoke { 5 } else { 10 });

    let stats_cfg = if smoke {
        StatsConfig::tiny(3)
    } else {
        StatsConfig {
            seed: 3,
            ..StatsConfig::default()
        }
    };
    let db = Arc::new(Database::new(stats_catalog(&stats_cfg)));
    let wl_cfg = WorkloadConfig {
        seed: 5,
        templates: if smoke { 4 } else { 8 },
        queries: if smoke { 6 } else { 16 },
        max_tables: if smoke { 3 } else { 5 },
        max_predicates: 4,
        retries: 30,
        max_subplan_card: 1e7,
    };
    let wl = stats_ceb(&db, &wl_cfg);
    assert!(!wl.queries.is_empty(), "chaos serve workload is empty");
    let truth = Arc::new(TrueCardService::new());
    // Warm the truth cache and engine memos so chaos phases measure the
    // service's fault handling, not first-touch execution.
    {
        let est: Arc<dyn CardEst> = Arc::new(PostgresEst::fit(&db));
        let server = Arc::new(Server::start(
            Arc::clone(&db),
            Arc::clone(&truth),
            est,
            CostModel::default(),
            ServeConfig::default(),
        ));
        run_load(
            &server,
            &wl,
            &LoadConfig {
                sessions: 1,
                arrival_qps: None,
                replays: 1,
                deadline: None,
            },
        );
    }

    let replays = 256usize.div_ceil(sessions * wl.queries.len()).max(2);
    let load = LoadConfig {
        sessions,
        arrival_qps: None,
        replays,
        deadline: None,
    };
    let storm = ChaosServeConfig {
        seed: 17,
        storm_rate: 1.0,
        storm_ticks: u32::MAX,
        storm_stall: stall,
        ..ChaosServeConfig::default()
    };
    // A breaker sized so the storm trips it within the first queries and
    // probes keep re-testing (and re-failing) during the phase.
    let tight_breaker = BreakerConfig {
        window: 32,
        open_threshold: 0.5,
        min_samples: 8,
        cooldown: Duration::from_millis(100),
    };

    let baseline = run_phase("baseline", &db, &truth, &wl, ServeConfig::default(), &load);
    assert_eq!(
        baseline.report.est_failures, 0,
        "baseline: clean serving must be fault-free"
    );
    assert_eq!(
        baseline.stats.breaker.opens, 0,
        "baseline: the breaker is observation-only when healthy"
    );

    let storm_open = run_phase(
        "storm/breaker-off",
        &db,
        &truth,
        &wl,
        ServeConfig {
            chaos: Some(storm.clone()),
            breaker: None,
            // No retries in either storm phase: the phases differ only in
            // the breaker, so the tail comparison is pure stall-paid vs
            // shorted (a retry against a live storm just pays twice, and
            // a retry after the breaker opens re-attributes the slot).
            max_retries: 0,
            ..ServeConfig::default()
        },
        &load,
    );
    assert!(
        !storm_open.report.degraded_latencies.is_empty(),
        "storm without a breaker must produce failed-then-degraded queries"
    );

    let storm_shorted = run_phase(
        "storm/breaker-on",
        &db,
        &truth,
        &wl,
        ServeConfig {
            chaos: Some(storm.clone()),
            breaker: Some(tight_breaker),
            max_retries: 0,
            ..ServeConfig::default()
        },
        &load,
    );
    assert!(
        storm_shorted.stats.breaker.opens >= 1,
        "a total storm must trip the breaker"
    );
    assert!(
        !storm_shorted.report.shorted_latencies.is_empty(),
        "an open breaker must short slots"
    );

    let deadline = run_phase(
        "slow/deadline",
        &db,
        &truth,
        &wl,
        ServeConfig {
            chaos: Some(ChaosServeConfig {
                seed: 19,
                slow_rate: 1.0,
                slow_stall: 4 * stall,
                ..ChaosServeConfig::default()
            }),
            breaker: None,
            max_retries: 0,
            ..ServeConfig::default()
        },
        &LoadConfig {
            deadline: Some(stall / 2),
            ..load.clone()
        },
    );
    assert!(
        deadline.stats.deadline_expired_slots > 0,
        "slow ticks against a tight deadline must expire slots in the queue"
    );

    let panics = run_phase(
        "drainer-panics",
        &db,
        &truth,
        &wl,
        ServeConfig {
            chaos: Some(ChaosServeConfig {
                seed: 23,
                panic_rate: 0.2,
                max_panics: if smoke { 2 } else { 5 },
                ..ChaosServeConfig::default()
            }),
            watchdog_interval: Duration::from_millis(5),
            ..ServeConfig::default()
        },
        &load,
    );
    assert!(
        panics.stats.chaos_panics >= 1,
        "the panic phase must actually kill the drainer"
    );
    assert!(
        panics.stats.watchdog_restarts >= u64::from(panics.stats.chaos_panics),
        "every drainer death must be answered by a watchdog restart"
    );

    // The headline: shorting a doomed call must be materially cheaper at
    // the tail than paying for it and then degrading.
    let degraded_p99 = percentile(&storm_open.report.degraded_latencies, 0.99);
    let shorted_p99 = percentile(&storm_shorted.report.shorted_latencies, 0.99);
    println!(
        "headline: failed-then-degraded p99 {degraded_p99:.4}s vs breaker-shorted p99 \
         {shorted_p99:.4}s ({:.1}x)",
        degraded_p99 / shorted_p99
    );
    assert!(
        shorted_p99 < degraded_p99,
        "breaker-shorted p99 ({shorted_p99:.4}s) must beat failed-then-degraded \
         p99 ({degraded_p99:.4}s)"
    );

    if smoke {
        println!("smoke mode (CARDBENCH_FAST=1): not writing BENCH_chaos.json");
        return;
    }
    let phases = [baseline, storm_open, storm_shorted, deadline, panics];
    let summary = Json::object([
        ("bench", Json::String("chaos_serve".to_string())),
        (
            "setup",
            Json::String(format!(
                "STATS-CEB analog workload ({} queries, ≤5 tables) on STATS data at the \
                 default benchmark scale; PostgreSQL baseline estimator behind the serving \
                 layer; {sessions} closed-loop sessions per phase; storm stall {stall:?} per \
                 admitted call; truth cache warmed before timing",
                wl.queries.len()
            )),
        ),
        (
            "notes",
            Json::String(
                "each phase restarts the service with one fault regime; latency classes are \
                 per completed query, worst sub-plan fault wins: clean, breaker-shorted \
                 (typed Shorted/DeadlineExceeded, the doomed call was skipped), or \
                 failed-then-degraded (typed Panicked/TimedOut, the doomed call was paid). \
                 The headline is the storm phases' tail: with the breaker open, requests \
                 short to the shared PostgreSQL fallback instantly instead of paying the \
                 storm stall per tick (retries are disabled in both storm phases so the \
                 comparison is pure). unattributed is asserted zero everywhere: every \
                 degradation carries a typed error"
                    .to_string(),
            ),
        ),
        (
            "headline",
            Json::object([
                ("failed_then_degraded_p99_secs", Json::Number(degraded_p99)),
                ("breaker_shorted_p99_secs", Json::Number(shorted_p99)),
                (
                    "degraded_over_shorted_p99",
                    Json::Number(degraded_p99 / shorted_p99),
                ),
            ]),
        ),
        (
            "phases",
            Json::Array(phases.iter().map(phase_json).collect()),
        ),
    ]);
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_chaos.json");
    std::fs::write(&path, summary.pretty()).expect("write BENCH_chaos.json");
    println!("wrote {}", path.display());
}
