//! End-to-end harness throughput: `run_workload` on the fast STATS
//! workload at 1 planning thread vs all cores, plus a `BENCH_harness.json`
//! summary at the repo root for regression tracking.
//!
//! Each measured run constructs a fresh [`TrueCardService`] so the
//! parallel phase pays the full (sharded, concurrent) true-cardinality
//! cost — the workload the two-phase split is designed to spread.

use std::path::PathBuf;

use cardbench_support::criterion::{Criterion, Measurement};
use cardbench_support::json::Json;
use cardbench_support::par;

use cardbench_engine::{CostModel, TrueCardService};
use cardbench_estimators::EstimatorKind;
use cardbench_harness::endtoend::run_workload_with_threads;
use cardbench_harness::{build_estimator, Bench, BenchConfig};

fn measurement_to_value(m: &Measurement) -> Json {
    Json::object([
        ("id", Json::String(m.id.clone())),
        ("median_secs", Json::Number(m.median.as_secs_f64())),
        ("mean_secs", Json::Number(m.mean.as_secs_f64())),
        ("min_secs", Json::Number(m.min.as_secs_f64())),
        ("samples", Json::Number(m.samples as f64)),
    ])
}

fn main() {
    let bench = Bench::build(BenchConfig::fast(11));
    let built = build_estimator(
        EstimatorKind::Postgres,
        &bench.stats_db,
        &bench.stats_train,
        &bench.config.settings,
    );
    let db = &bench.stats_db;
    let wl = &bench.stats_wl;
    let cost = CostModel::default();
    let cores = par::max_threads();
    // Measure at >= 4 workers even on smaller machines: the comparison
    // stays honest (`cores` is recorded alongside) and the fan-out path
    // is exercised either way.
    let n = par::resolve_threads(0).max(4);

    let mut c = Criterion::default();
    let mut group = c.benchmark_group("run_workload_stats_fast");
    group.sample_size(10);
    for threads in [1, n] {
        group.bench_function(format!("threads={threads}"), |b| {
            b.iter(|| {
                let truth = TrueCardService::new();
                run_workload_with_threads(db, wl, built.est.as_ref(), &truth, &cost, threads)
            })
        });
    }
    group.finish();

    let [seq, par_run] = &c.measurements[..] else {
        panic!("expected exactly two measurements");
    };
    let speedup = seq.median.as_secs_f64() / par_run.median.as_secs_f64();
    println!("run_workload speedup at {n} threads ({cores} cores): {speedup:.2}x");

    let summary = Json::object([
        ("bench", Json::String("harness".to_string())),
        ("workload", Json::String("STATS-CEB (fast)".to_string())),
        ("queries", Json::Number(wl.queries.len() as f64)),
        ("cores", Json::Number(cores as f64)),
        ("threads", Json::Number(n as f64)),
        ("speedup_median", Json::Number(speedup)),
        (
            "measurements",
            Json::Array(c.measurements.iter().map(measurement_to_value).collect()),
        ),
    ]);
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_harness.json");
    std::fs::write(&path, summary.pretty()).expect("write BENCH_harness.json");
    println!("wrote {}", path.display());
}
