//! Sub-plan pipeline benchmarks: the one-pass true-cardinality
//! enumerator against the per-mask exact-execution baseline, and batched
//! against sequential estimator inference, on 6–8-table STATS-shaped
//! star queries (posts hub + children, users/badges arm). Writes
//! `BENCH_subplan.json` at the repo root with medians and speedups so
//! the amortization claim stays reproducible. `CARDBENCH_FAST=1` runs a
//! 1-sample smoke on the smallest query and skips the JSON.

use std::path::PathBuf;

use cardbench_support::criterion::Criterion;
use cardbench_support::json::Json;

use cardbench_datagen::{stats_catalog, StatsConfig};
use cardbench_engine::{exact_cardinality, subplan_true_cards, Database};
use cardbench_estimators::lw::TrainingSet;
use cardbench_estimators::EstimatorKind;
use cardbench_harness::{build_estimator, EstimatorSettings};
use cardbench_query::{connected_subsets, JoinEdge, JoinQuery, Predicate, Region, SubPlanQuery};
use cardbench_workload::training_workload;

/// STATS-shaped star query on `tables` ∈ 6..=8 tables: `posts` is the
/// hub with five FK children; 7 adds the `users` arm, 8 extends it with
/// `badges` (a two-hop arm, as STATS-CEB queries have).
fn star_query(tables: usize) -> JoinQuery {
    let mut q = JoinQuery {
        tables: vec![
            "posts".into(),
            "comments".into(),
            "votes".into(),
            "postHistory".into(),
            "postLinks".into(),
            "tags".into(),
        ],
        joins: vec![
            JoinEdge::new(0, "Id", 1, "PostId"),
            JoinEdge::new(0, "Id", 2, "PostId"),
            JoinEdge::new(0, "Id", 3, "PostId"),
            JoinEdge::new(0, "Id", 4, "PostId"),
            JoinEdge::new(0, "Id", 5, "ExcerptPostId"),
        ],
        predicates: vec![
            Predicate::new(0, "Score", Region::ge(0)),
            Predicate::new(1, "Score", Region::ge(0)),
        ],
    };
    if tables >= 7 {
        q.tables.push("users".into());
        q.joins.push(JoinEdge::new(6, "Id", 0, "OwnerUserId"));
    }
    if tables >= 8 {
        q.tables.push("badges".into());
        q.joins.push(JoinEdge::new(6, "Id", 7, "UserId"));
    }
    q
}

fn median_of(c: &Criterion, id: &str) -> f64 {
    c.measurements
        .iter()
        .find(|m| m.id == id)
        .unwrap_or_else(|| panic!("no measurement {id}"))
        .median
        .as_secs_f64()
}

fn main() {
    let smoke = std::env::var("CARDBENCH_FAST").is_ok_and(|v| v == "1");
    let table_counts: &[usize] = if smoke { &[6] } else { &[6, 7, 8] };
    let samples = if smoke { 1 } else { 10 };

    // Smoke uses the test-tier tiny dataset; the full run uses the
    // default benchmark scale (0.02 of real STATS sizes) so model
    // evaluation, not fixed per-call overhead, dominates inference.
    let stats = if smoke {
        StatsConfig::tiny(3)
    } else {
        StatsConfig {
            seed: 3,
            ..StatsConfig::default()
        }
    };
    let db = &Database::new(stats_catalog(&stats));
    let settings = EstimatorSettings::fast(3);
    let (train_qs, train_cards) = training_workload(db, 120, 5, 3 ^ 0x7a);
    let train = TrainingSet {
        queries: train_qs,
        cards: train_cards,
    };

    let mut c = Criterion::default();

    // --- One-pass enumeration vs per-mask exact execution ---
    for &nt in table_counts {
        let q = star_query(nt);
        let masks = connected_subsets(&q);
        // Correctness guard: both paths must agree bit-for-bit before we
        // time them.
        let one_pass = subplan_true_cards(db, &q).expect("enumeration succeeds");
        assert_eq!(one_pass.len(), masks.len());
        for (&mask, &(m, card)) in masks.iter().zip(&one_pass) {
            assert_eq!(mask, m);
            let sub = SubPlanQuery::project(&q, mask);
            let exact = exact_cardinality(db, &sub.query).expect("exact succeeds");
            assert_eq!(
                exact.to_bits(),
                card.to_bits(),
                "{nt} tables, mask {mask:?}: exact {exact} vs one-pass {card}"
            );
        }

        let mut group = c.benchmark_group(format!("truecard_{nt}_tables"));
        group.sample_size(samples);
        group.bench_function("per_mask", |b| {
            b.iter(|| {
                masks
                    .iter()
                    .map(|&m| {
                        let sub = SubPlanQuery::project(&q, m);
                        exact_cardinality(db, &sub.query).expect("exact succeeds")
                    })
                    .sum::<f64>()
            })
        });
        group.bench_function("one_pass", |b| {
            b.iter(|| {
                subplan_true_cards(db, &q)
                    .expect("enumeration succeeds")
                    .iter()
                    .map(|&(_, card)| card)
                    .sum::<f64>()
            })
        });
        group.finish();
    }

    // --- Batched vs sequential ML inference ---
    let widest = *table_counts.last().expect("non-empty");
    let q = star_query(widest);
    let subs: Vec<SubPlanQuery> = connected_subsets(&q)
        .into_iter()
        .map(|m| SubPlanQuery::project(&q, m))
        .collect();
    let ml_kinds = [
        EstimatorKind::Mscn,
        EstimatorKind::LwNn,
        EstimatorKind::DeepDb,
        EstimatorKind::Flat,
    ];
    for kind in ml_kinds {
        let built = build_estimator(kind, db, &train, &settings);
        let est = built.est;
        // Correctness guard: batched inference must be bit-identical.
        let batched = est.estimate_batch(db, &subs);
        for (sub, &b) in subs.iter().zip(&batched) {
            let s = est.estimate(db, sub);
            assert_eq!(
                s.to_bits(),
                b.to_bits(),
                "{}: sequential {s} vs batched {b}",
                kind.name()
            );
        }
        let mut group = c.benchmark_group(format!("infer_{}", kind.name()));
        group.sample_size(samples);
        group.bench_function("sequential", |b| {
            b.iter(|| subs.iter().map(|s| est.estimate(db, s)).sum::<f64>())
        });
        group.bench_function("batched", |b| {
            b.iter(|| est.estimate_batch(db, &subs).iter().sum::<f64>())
        });
        group.finish();
    }

    let query_entries: Vec<Json> = table_counts
        .iter()
        .map(|&nt| {
            let per_mask = median_of(&c, &format!("truecard_{nt}_tables/per_mask"));
            let one_pass = median_of(&c, &format!("truecard_{nt}_tables/one_pass"));
            let speedup = per_mask / one_pass;
            let subplans = connected_subsets(&star_query(nt)).len();
            println!(
                "truecard {nt} tables ({subplans:>3} sub-plans): per-mask {per_mask:.6}s  one-pass {one_pass:.6}s  speedup {speedup:.2}x"
            );
            Json::object([
                ("tables", Json::Number(nt as f64)),
                ("subplans", Json::Number(subplans as f64)),
                ("per_mask_median_secs", Json::Number(per_mask)),
                ("one_pass_median_secs", Json::Number(one_pass)),
                ("speedup", Json::Number(speedup)),
            ])
        })
        .collect();
    let ml_entries: Vec<Json> = ml_kinds
        .iter()
        .map(|kind| {
            let seq = median_of(&c, &format!("infer_{}/sequential", kind.name()));
            let bat = median_of(&c, &format!("infer_{}/batched", kind.name()));
            let speedup = seq / bat;
            println!(
                "infer {:>8}: sequential {seq:.6}s  batched {bat:.6}s  speedup {speedup:.2}x",
                kind.name()
            );
            Json::object([
                ("method", Json::String(kind.name().to_string())),
                ("sequential_median_secs", Json::Number(seq)),
                ("batched_median_secs", Json::Number(bat)),
                ("speedup", Json::Number(speedup)),
            ])
        })
        .collect();

    if smoke {
        println!("smoke mode (CARDBENCH_FAST=1): not writing BENCH_subplan.json");
        return;
    }
    let summary = Json::object([
        ("bench", Json::String("subplan".to_string())),
        (
            "setup",
            Json::String(
                "STATS-shaped star queries (posts hub + users/badges arm), STATS data at the \
                 default 0.02 benchmark scale; full connected sub-plan space per query"
                    .to_string(),
            ),
        ),
        ("truecard_enumeration", Json::Array(query_entries)),
        ("ml_inference", Json::Array(ml_entries)),
    ]);
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_subplan.json");
    std::fs::write(&path, summary.pretty()).expect("write BENCH_subplan.json");
    println!("wrote {}", path.display());
}
