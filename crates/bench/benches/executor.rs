//! Join-kernel micro-benchmarks: the flat open-addressing hash join (and
//! the merge / index-nested-loop kernels) against an inline replica of
//! the pre-vectorization `HashMap<i64, Vec<u32>>` executor, at build
//! sides from 10^3 to 10^6 rows. Writes `BENCH_executor.json` at the
//! repo root with both medians per size so the speedup claim stays
//! reproducible. `CARDBENCH_FAST=1` runs a 1-sample smoke at the two
//! smallest sizes and skips the JSON.

use std::collections::HashMap;
use std::path::PathBuf;

use cardbench_support::criterion::Criterion;
use cardbench_support::json::Json;
use cardbench_support::rand::rngs::StdRng;
use cardbench_support::rand::{Rng, SeedableRng};

use cardbench_engine::{join_matches_with, ExecScratch, ExecStats, JoinAlgo, HASH_SPILL_ROWS};

/// NULL sentinel used by the executor's key vectors.
const NULL_KEY: i64 = i64::MIN;

/// The executor's hash join as it stood before the flat-table rewrite:
/// a `HashMap` keyed build with one `Vec<u32>` per distinct key, and a
/// `key % parts` partitioned path above the spill threshold.
fn baseline_hash_join(lkeys: &[i64], rkeys: &[i64]) -> (Vec<u32>, Vec<u32>) {
    if rkeys.len() > HASH_SPILL_ROWS {
        return baseline_partitioned(lkeys, rkeys);
    }
    let mut table: HashMap<i64, Vec<u32>> = HashMap::new();
    for (i, &k) in rkeys.iter().enumerate() {
        if k != NULL_KEY {
            table.entry(k).or_default().push(i as u32);
        }
    }
    let mut lout = Vec::new();
    let mut rout = Vec::new();
    for (i, &k) in lkeys.iter().enumerate() {
        if k == NULL_KEY {
            continue;
        }
        if let Some(rows) = table.get(&k) {
            for &r in rows {
                lout.push(i as u32);
                rout.push(r);
            }
        }
    }
    (lout, rout)
}

fn baseline_partitioned(lkeys: &[i64], rkeys: &[i64]) -> (Vec<u32>, Vec<u32>) {
    let parts = rkeys.len().div_ceil(HASH_SPILL_ROWS).max(2);
    let mut lparts: Vec<(Vec<i64>, Vec<u32>)> = vec![Default::default(); parts];
    let mut rparts: Vec<(Vec<i64>, Vec<u32>)> = vec![Default::default(); parts];
    for (i, &k) in lkeys.iter().enumerate() {
        if k != NULL_KEY {
            let p = (k.unsigned_abs() as usize) % parts;
            lparts[p].0.push(k);
            lparts[p].1.push(i as u32);
        }
    }
    for (i, &k) in rkeys.iter().enumerate() {
        if k != NULL_KEY {
            let p = (k.unsigned_abs() as usize) % parts;
            rparts[p].0.push(k);
            rparts[p].1.push(i as u32);
        }
    }
    let mut lout = Vec::new();
    let mut rout = Vec::new();
    for ((lk, lidx), (rk, ridx)) in lparts.into_iter().zip(rparts) {
        let (pl, pr) = baseline_hash_join(&lk, &rk);
        lout.extend(pl.into_iter().map(|i| lidx[i as usize]));
        rout.extend(pr.into_iter().map(|i| ridx[i as usize]));
    }
    (lout, rout)
}

/// Uniform keys in `0..domain` — the duplicate factor joins see in the
/// benchmark workloads (a few matches per probe key).
fn gen_keys(rng: &mut StdRng, n: usize, domain: i64) -> Vec<i64> {
    (0..n).map(|_| rng.gen_range(0..domain)).collect()
}

fn median_of(c: &Criterion, id: &str) -> f64 {
    c.measurements
        .iter()
        .find(|m| m.id == id)
        .unwrap_or_else(|| panic!("no measurement {id}"))
        .median
        .as_secs_f64()
}

fn main() {
    let smoke = std::env::var("CARDBENCH_FAST").is_ok_and(|v| v == "1");
    let sizes: &[usize] = if smoke {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };
    let samples = if smoke { 1 } else { 10 };

    let mut rng = StdRng::seed_from_u64(0xCA12D);
    let mut c = Criterion::default();
    let mut scratch = ExecScratch::new();
    for &n in sizes {
        let rkeys = gen_keys(&mut rng, n, n as i64);
        let lkeys = gen_keys(&mut rng, 2 * n, n as i64);
        // Correctness guard: both kernels must agree before we time them.
        let mut stats = ExecStats::default();
        let mut flat = join_matches_with(
            JoinAlgo::Hash,
            &lkeys,
            &rkeys,
            HASH_SPILL_ROWS,
            &mut stats,
            &mut scratch,
        );
        let mut base = baseline_hash_join(&lkeys, &rkeys);
        for out in [&mut flat, &mut base] {
            let mut pairs: Vec<(u32, u32)> =
                out.0.iter().copied().zip(out.1.iter().copied()).collect();
            pairs.sort_unstable();
            out.0 = pairs.iter().map(|p| p.0).collect();
        }
        assert_eq!(flat.0, base.0, "kernel disagreement at n={n}");

        let mut group = c.benchmark_group(format!("join_build_{n}"));
        group.sample_size(samples);
        group.bench_function("baseline_hashmap", |b| {
            b.iter(|| baseline_hash_join(&lkeys, &rkeys))
        });
        group.bench_function("flat_hash", |b| {
            b.iter(|| {
                let mut stats = ExecStats::default();
                join_matches_with(
                    JoinAlgo::Hash,
                    &lkeys,
                    &rkeys,
                    HASH_SPILL_ROWS,
                    &mut stats,
                    &mut scratch,
                )
            })
        });
        for (label, algo) in [
            ("merge", JoinAlgo::Merge),
            ("inl", JoinAlgo::IndexNestedLoop),
        ] {
            group.bench_function(label, |b| {
                b.iter(|| {
                    let mut stats = ExecStats::default();
                    join_matches_with(algo, &lkeys, &rkeys, usize::MAX, &mut stats, &mut scratch)
                })
            });
        }
        group.finish();
    }

    let mut speedups: Vec<f64> = Vec::new();
    let size_entries: Vec<Json> = sizes
        .iter()
        .map(|&n| {
            let base = median_of(&c, &format!("join_build_{n}/baseline_hashmap"));
            let flat = median_of(&c, &format!("join_build_{n}/flat_hash"));
            let speedup = base / flat;
            speedups.push(speedup);
            println!(
                "build {n:>8} rows: baseline {base:.6}s  flat {flat:.6}s  speedup {speedup:.2}x"
            );
            Json::object([
                ("build_rows", Json::Number(n as f64)),
                ("probe_rows", Json::Number(2.0 * n as f64)),
                ("baseline_hashmap_median_secs", Json::Number(base)),
                ("flat_hash_median_secs", Json::Number(flat)),
                ("speedup", Json::Number(speedup)),
                (
                    "merge_median_secs",
                    Json::Number(median_of(&c, &format!("join_build_{n}/merge"))),
                ),
                (
                    "inl_median_secs",
                    Json::Number(median_of(&c, &format!("join_build_{n}/inl"))),
                ),
            ])
        })
        .collect();
    speedups.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let speedup_median = speedups[speedups.len() / 2];
    println!("flat vs baseline median speedup: {speedup_median:.2}x");

    if smoke {
        println!("smoke mode (CARDBENCH_FAST=1): not writing BENCH_executor.json");
        return;
    }
    let summary = Json::object([
        ("bench", Json::String("executor".to_string())),
        (
            "kernel",
            Json::String("hash join build+probe, probe = 2x build, keys uniform 0..n".to_string()),
        ),
        ("spill_rows", Json::Number(HASH_SPILL_ROWS as f64)),
        ("speedup_median", Json::Number(speedup_median)),
        ("sizes", Json::Array(size_entries)),
    ]);
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_executor.json");
    std::fs::write(&path, summary.pretty()).expect("write BENCH_executor.json");
    println!("wrote {}", path.display());
}
