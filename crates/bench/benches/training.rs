//! Per-estimator training/construction cost (the Figure 3 training axis).

use cardbench_support::criterion::Criterion;
use cardbench_support::{criterion_group, criterion_main};

use cardbench_estimators::EstimatorKind;
use cardbench_harness::{build_estimator, Bench, BenchConfig};

fn bench_training(c: &mut Criterion) {
    let bench = Bench::build(BenchConfig::fast(6));
    let mut group = c.benchmark_group("training_time");
    group.sample_size(10);
    for kind in [
        EstimatorKind::Postgres,
        EstimatorKind::MultiHist,
        EstimatorKind::PessEst,
        EstimatorKind::LwXgb,
        EstimatorKind::LwNn,
        EstimatorKind::Mscn,
        EstimatorKind::BayesCard,
        EstimatorKind::DeepDb,
        EstimatorKind::Flat,
    ] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                build_estimator(
                    kind,
                    &bench.stats_db,
                    &bench.stats_train,
                    &bench.config.settings,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
