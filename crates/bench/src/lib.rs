//! Benchmark entry points: a shared full-evaluation runner used by the
//! `table1`–`table7` and `figure1`–`figure3` binaries, plus criterion
//! micro-benchmarks under `benches/`.
//!
//! Scale knobs (environment variables):
//! - `CARDBENCH_FAST=1` — tiny datasets/workloads (CI-sized, seconds).
//! - `CARDBENCH_SEED`   — global seed (default 7).
//! - `CARDBENCH_SCALE`  — STATS row-count multiplier override.
//! - `CARDBENCH_THREADS` / `RAYON_NUM_THREADS` — planning fan-out width
//!   (also settable per-run with a `--threads N` CLI argument on every
//!   bench binary; `0` or unset = all cores).

use std::time::Instant;

use cardbench_engine::{CostModel, TrueCardService};
use cardbench_estimators::EstimatorKind;
use cardbench_harness::endtoend::run_workload_with_threads;
use cardbench_harness::{build_estimator, Bench, BenchConfig, MethodRun};

/// Full evaluation output: every method run on both workloads.
pub struct FullResults {
    /// The materialized benchmark.
    pub bench: Bench,
    /// Per-method runs on JOB-LIGHT.
    pub imdb_runs: Vec<MethodRun>,
    /// Per-method runs on STATS-CEB.
    pub stats_runs: Vec<MethodRun>,
}

/// Reads the benchmark configuration from the environment.
pub fn config_from_env() -> BenchConfig {
    let seed: u64 = std::env::var("CARDBENCH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let fast = std::env::var("CARDBENCH_FAST").is_ok_and(|v| v == "1");
    let mut cfg = if fast {
        BenchConfig::fast(seed)
    } else {
        BenchConfig::standard(seed)
    };
    if let Ok(scale) = std::env::var("CARDBENCH_SCALE") {
        if let Ok(scale) = scale.parse::<f64>() {
            cfg.stats.scale = scale;
        }
    }
    // `--threads N` on any bench binary overrides the environment
    // (`CARDBENCH_THREADS` / `RAYON_NUM_THREADS`, which the harness
    // resolves itself when this stays 0).
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                cfg.threads = n;
            }
        } else if let Some(n) = a.strip_prefix("--threads=").and_then(|v| v.parse().ok()) {
            cfg.threads = n;
        }
    }
    cfg
}

/// Runs every estimator on both workloads, printing progress to stderr.
pub fn run_full(cfg: BenchConfig) -> FullResults {
    eprintln!(
        "[cardbench] building datasets (STATS scale {}, seed {})...",
        cfg.stats.scale, cfg.settings.seed
    );
    let t0 = Instant::now();
    let bench = Bench::build(cfg);
    eprintln!(
        "[cardbench] built: STATS {} rows / {} queries, IMDB {} rows / {} queries ({:.1?})",
        bench.stats_db.catalog().total_rows(),
        bench.stats_wl.queries.len(),
        bench.imdb_db.catalog().total_rows(),
        bench.imdb_wl.queries.len(),
        t0.elapsed()
    );
    let cost = CostModel::default();
    let mut imdb_runs = Vec::new();
    let mut stats_runs = Vec::new();
    for kind in EstimatorKind::ALL {
        for (label, db, wl, train, out) in [
            (
                "JOB-LIGHT",
                &bench.imdb_db,
                &bench.imdb_wl,
                &bench.imdb_train,
                &mut imdb_runs,
            ),
            (
                "STATS-CEB",
                &bench.stats_db,
                &bench.stats_wl,
                &bench.stats_train,
                &mut stats_runs,
            ),
        ] {
            let t0 = Instant::now();
            let built = build_estimator(kind, db, train, &bench.config.settings);
            let truth = TrueCardService::new();
            let queries = run_workload_with_threads(
                db,
                wl,
                built.est.as_ref(),
                &truth,
                &cost,
                bench.config.threads,
            );
            let run = MethodRun {
                kind,
                train_time: built.train_time,
                model_size: built.model_size,
                queries,
            };
            eprintln!(
                "[cardbench] {:<12} {:<10} train {:>9.2?} e2e {:>9.2?} (total {:.1?})",
                kind.name(),
                label,
                run.train_time,
                run.e2e_total(),
                t0.elapsed()
            );
            out.push(run);
        }
    }
    FullResults {
        bench,
        imdb_runs,
        stats_runs,
    }
}
