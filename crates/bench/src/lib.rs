//! Benchmark entry points: a shared full-evaluation runner used by the
//! `table1`–`table7` and `figure1`–`figure3` binaries, plus criterion
//! micro-benchmarks under `benches/`.
//!
//! Scale knobs (environment variables):
//! - `CARDBENCH_FAST=1` — tiny datasets/workloads (CI-sized, seconds).
//! - `CARDBENCH_SEED`   — global seed (default 7).
//! - `CARDBENCH_SCALE`  — STATS row-count multiplier override.
//! - `CARDBENCH_THREADS` / `RAYON_NUM_THREADS` — planning fan-out width
//!   (also settable per-run with a `--threads N` CLI argument on every
//!   bench binary; `0` or unset = all cores).
//!
//! Fault-tolerance knobs (CLI arguments on every bench binary):
//! - `--timeout-ms N`    — per-sub-plan-estimate wall-clock budget.
//! - `--mem-budget-mb N` — executor intermediate-bytes budget per query.
//! - `--checkpoint PATH` — stream per-query JSONL records to `PATH`.
//! - `--resume`          — skip (estimator, query) pairs already in the
//!   checkpoint file instead of truncating it.
//!
//! Observability knobs (CLI argument or environment variable on every
//! bench binary):
//! - `--trace PATH` / `CARDBENCH_TRACE=PATH` — record spans and metrics
//!   during the run, then write a Chrome `trace_event` JSON profile to
//!   `PATH` (open in `chrome://tracing` or Perfetto) and a Prometheus
//!   text-format metrics dump to `PATH.prom`. Recording is off unless
//!   one of these is set, so the default path stays overhead-free.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use cardbench_engine::{CostModel, TrueCardService};
use cardbench_estimators::EstimatorKind;
use cardbench_harness::{
    build_estimator, run_workload_with_options, Bench, BenchConfig, MethodRun, RunOptions,
};

/// Full evaluation output: every method run on both workloads.
pub struct FullResults {
    /// The materialized benchmark.
    pub bench: Bench,
    /// Per-method runs on JOB-LIGHT.
    pub imdb_runs: Vec<MethodRun>,
    /// Per-method runs on STATS-CEB.
    pub stats_runs: Vec<MethodRun>,
}

/// Reads the benchmark configuration from the environment.
pub fn config_from_env() -> BenchConfig {
    let seed: u64 = std::env::var("CARDBENCH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let fast = std::env::var("CARDBENCH_FAST").is_ok_and(|v| v == "1");
    let mut cfg = if fast {
        BenchConfig::fast(seed)
    } else {
        BenchConfig::standard(seed)
    };
    if let Ok(scale) = std::env::var("CARDBENCH_SCALE") {
        if let Ok(scale) = scale.parse::<f64>() {
            cfg.stats.scale = scale;
        }
    }
    // `--threads N` on any bench binary overrides the environment
    // (`CARDBENCH_THREADS` / `RAYON_NUM_THREADS`, which the harness
    // resolves itself when this stays 0).
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                cfg.threads = n;
            }
        } else if let Some(n) = a.strip_prefix("--threads=").and_then(|v| v.parse().ok()) {
            cfg.threads = n;
        }
    }
    cfg
}

/// Where the trace profile should go: `--trace PATH` (or `--trace=PATH`)
/// wins over the `CARDBENCH_TRACE` environment variable; `None` means
/// tracing stays disabled.
pub fn trace_path_from_args() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace" {
            if let Some(p) = args.next() {
                return Some(p.into());
            }
        } else if let Some(p) = a.strip_prefix("--trace=") {
            return Some(p.into());
        }
    }
    std::env::var_os("CARDBENCH_TRACE").map(PathBuf::from)
}

/// Exports the recorded trace and metrics when dropped, so binaries get
/// a profile even on early `std::process::exit`-free error paths.
pub struct TraceGuard {
    path: Option<PathBuf>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        let Some(path) = self.path.take() else { return };
        match cardbench_obs::write_trace(&path) {
            Ok((trace, prom)) => eprintln!(
                "[cardbench] trace written to {} (metrics: {})",
                trace.display(),
                prom.display()
            ),
            Err(e) => eprintln!("[cardbench] trace export failed: {e}"),
        }
    }
}

/// Turns span/metric recording on when `--trace`/`CARDBENCH_TRACE`
/// asks for it. Call once at the top of `main` and hold the returned
/// guard for the whole run; the profile is written when it drops.
pub fn init_tracing() -> TraceGuard {
    let path = trace_path_from_args();
    if path.is_some() {
        cardbench_obs::set_enabled(true);
    }
    TraceGuard { path }
}

/// Reads the fault-tolerance guard rails from the CLI arguments
/// (`--timeout-ms`, `--mem-budget-mb`, `--checkpoint`, `--resume`),
/// on top of the given planning thread count.
pub fn run_options_from_args(threads: usize) -> RunOptions {
    let mut opts = RunOptions::with_threads(threads);
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 0;
    // Each flag accepts both `--flag value` and `--flag=value`.
    let value = |i: &mut usize, flag: &str| -> Option<String> {
        let a = &argv[*i];
        if a == flag {
            *i += 1;
            argv.get(*i).cloned()
        } else {
            a.strip_prefix(&format!("{flag}=")).map(String::from)
        }
    };
    while i < argv.len() {
        if let Some(ms) = value(&mut i, "--timeout-ms").and_then(|v| v.parse().ok()) {
            opts.timeout = Some(Duration::from_millis(ms));
        } else if let Some(mb) =
            value(&mut i, "--mem-budget-mb").and_then(|v| v.parse::<u64>().ok())
        {
            opts.mem_budget_bytes = Some(mb * (1u64 << 20));
        } else if let Some(p) = value(&mut i, "--checkpoint") {
            opts.checkpoint = Some(p.into());
        } else if argv[i] == "--resume" {
            opts.resume = true;
        }
        i += 1;
    }
    opts
}

/// Runs every estimator on both workloads, printing progress to stderr.
/// Guard rails (timeouts, budgets, checkpoint/resume) come from the CLI
/// via [`run_options_from_args`].
pub fn run_full(cfg: BenchConfig) -> FullResults {
    let opts = run_options_from_args(cfg.threads);
    run_full_with_options(cfg, &opts)
}

/// [`run_full`] with explicit guard rails.
pub fn run_full_with_options(cfg: BenchConfig, opts: &RunOptions) -> FullResults {
    let _run_sp = cardbench_obs::span_with("run", "run", || "full-eval".to_string());
    eprintln!(
        "[cardbench] building datasets (STATS scale {}, seed {})...",
        cfg.stats.scale, cfg.settings.seed
    );
    let t0 = Instant::now();
    let bench = Bench::build(cfg);
    eprintln!(
        "[cardbench] built: STATS {} rows / {} queries, IMDB {} rows / {} queries ({:.1?})",
        bench.stats_db.catalog().total_rows(),
        bench.stats_wl.queries.len(),
        bench.imdb_db.catalog().total_rows(),
        bench.imdb_wl.queries.len(),
        t0.elapsed()
    );
    let cost = CostModel::default();
    let mut imdb_runs = Vec::new();
    let mut stats_runs = Vec::new();
    // A shared checkpoint file must only be truncated once: the first
    // run creates it (unless resuming), every later (estimator,
    // workload) run appends — their records are keyed by method and
    // workload, so they never collide.
    let mut first_run = true;
    for kind in EstimatorKind::ALL {
        let _est_sp = cardbench_obs::span_with("estimator", "run", || kind.name().to_string());
        for (label, db, wl, train, out) in [
            (
                "JOB-LIGHT",
                &bench.imdb_db,
                &bench.imdb_wl,
                &bench.imdb_train,
                &mut imdb_runs,
            ),
            (
                "STATS-CEB",
                &bench.stats_db,
                &bench.stats_wl,
                &bench.stats_train,
                &mut stats_runs,
            ),
        ] {
            let t0 = Instant::now();
            let built = build_estimator(kind, db, train, &bench.config.settings);
            let truth = TrueCardService::new();
            let mut opts = opts.clone();
            opts.threads = bench.config.threads;
            opts.resume = opts.resume || !first_run;
            first_run = false;
            let queries =
                run_workload_with_options(db, wl, built.est.as_ref(), &truth, &cost, &opts);
            let run = MethodRun {
                kind,
                train_time: built.train_time,
                model_size: built.model_size,
                queries,
            };
            eprintln!(
                "[cardbench] {:<12} {:<10} train {:>9.2?} e2e {:>9.2?} (total {:.1?})",
                kind.name(),
                label,
                run.train_time,
                run.e2e_total(),
                t0.elapsed()
            );
            out.push(run);
        }
    }
    FullResults {
        bench,
        imdb_runs,
        stats_runs,
    }
}
