//! How much estimation accuracy does the optimizer actually need?
//!
//! Injects controlled multiplicative log-normal noise around the *true*
//! cardinalities at increasing magnitudes and reports the resulting
//! P-Error distribution and end-to-end time. This isolates the
//! estimation-error → plan-quality transfer function of the engine,
//! the mechanism behind the paper's motivation ("estimation accuracy
//! does not directly equal query plan quality").

use cardbench_support::rand::rngs::StdRng;
use cardbench_support::rand::{Rng, SeedableRng};

use cardbench_engine::{Database, TrueCardService};
use cardbench_estimators::CardEst;
use cardbench_harness::{run_workload, Bench, MethodRun};
use cardbench_metrics::percentile_triple;
use cardbench_query::SubPlanQuery;

/// True cardinalities perturbed by log-normal noise of parameter
/// `sigma` (in log2 space): `est = true · 2^(sigma · N(0,1))`.
struct NoisyOracle {
    truth: TrueCardService,
    sigma: f64,
    seed: u64,
}

impl CardEst for NoisyOracle {
    fn name(&self) -> &'static str {
        "NoisyOracle"
    }

    fn estimate(&self, db: &Database, sub: &SubPlanQuery) -> f64 {
        let t = self.truth.cardinality(db, &sub.query).unwrap_or(1.0);
        // Per-call RNG keyed by the sub-plan, so estimates are stable no
        // matter which thread (or in which order) they are computed.
        let mut rng = StdRng::seed_from_u64(self.seed ^ sub.query.canonical_hash());
        // Box-Muller normal sample.
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        t * 2.0f64.powf(self.sigma * z)
    }
}

fn main() {
    let _trace = cardbench_bench::init_tracing();
    let bench = Bench::build(cardbench_bench::config_from_env());
    let db = &bench.stats_db;
    let truth = TrueCardService::new();
    let cost = cardbench_engine::CostModel::default();
    println!(
        "{:<8} {:>9} {:>9} {:>9} {:>12}  (median Q-Error implied: 2^(0.67·sigma))",
        "sigma", "P50%", "P90%", "P99%", "E2E"
    );
    for sigma in [0.0, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let est = NoisyOracle {
            truth: TrueCardService::new(),
            sigma,
            seed: 99,
        };
        let queries = run_workload(db, &bench.stats_wl, &est, &truth, &cost);
        let run = MethodRun {
            kind: cardbench_estimators::EstimatorKind::TrueCard,
            train_time: std::time::Duration::ZERO,
            model_size: 0,
            queries,
        };
        let (p50, p90, p99) = percentile_triple(&run.all_p_errors());
        println!(
            "{sigma:<8} {p50:>9.3} {p90:>9.3} {p99:>9.3} {:>12.3?}",
            run.e2e_total()
        );
    }
    println!("\nP-Error and end-to-end time degrade smoothly with noise — but");
    println!("note how much noise the plan survives before degrading: small");
    println!("Q-Errors are free, large ones are not (paper O5/O12).");
}
