//! The workload-shift experiment behind the paper's query-driven
//! findings (O1/O9): a query-driven model evaluated on queries drawn
//! from its own training distribution vs on the hand-shaped benchmark
//! workload it has never seen.

use cardbench_engine::{exact_cardinality, TrueCardService};
use cardbench_estimators::lw::{LwNn, TrainingSet};
use cardbench_estimators::mscn::Mscn;
use cardbench_estimators::CardEst;
use cardbench_metrics::{percentile_triple, q_error};
use cardbench_query::{SubPlanQuery, TableMask};

fn q_errors_on(
    est: &dyn CardEst,
    db: &cardbench_engine::Database,
    queries: &[cardbench_query::JoinQuery],
    cards: &[f64],
) -> (f64, f64, f64) {
    let errs: Vec<f64> = queries
        .iter()
        .zip(cards)
        .map(|(q, &t)| {
            let sub = SubPlanQuery {
                mask: TableMask::full(q.table_count()),
                query: q.clone(),
            };
            q_error(est.estimate(db, &sub), t)
        })
        .collect();
    percentile_triple(&errs)
}

fn main() {
    let _trace = cardbench_bench::init_tracing();
    let bench = cardbench_harness::Bench::build(cardbench_bench::config_from_env());
    let db = &bench.stats_db;
    let _ = TrueCardService::new();

    // Split the random training workload: first 80% to train, last 20%
    // held out (same distribution).
    let n = bench.stats_train.queries.len();
    let split = n * 4 / 5;
    let train = TrainingSet {
        queries: bench.stats_train.queries[..split].to_vec(),
        cards: bench.stats_train.cards[..split].to_vec(),
    };
    let heldout_q = &bench.stats_train.queries[split..];
    let heldout_c = &bench.stats_train.cards[split..];

    // The benchmark workload (different distribution: hand-shaped
    // templates, coverage predicates, non-empty results).
    let bench_q: Vec<_> = bench
        .stats_wl
        .queries
        .iter()
        .map(|w| w.query.clone())
        .collect();
    let bench_c: Vec<f64> = bench
        .stats_wl
        .queries
        .iter()
        .map(|w| exact_cardinality(db, &w.query).unwrap())
        .collect();

    println!(
        "{:<8} {:>30} {:>30}",
        "method", "in-distribution Q50/90/99", "benchmark Q50/90/99"
    );
    let mscn = Mscn::fit(db, &train, &bench.config.settings.mscn);
    let lwnn = LwNn::fit(db, &train, &bench.config.settings.lw_nn);
    for (name, est) in [
        ("MSCN", &mscn as &dyn CardEst),
        ("LW-NN", &lwnn as &dyn CardEst),
    ] {
        let (i50, i90, i99) = q_errors_on(est, db, heldout_q, heldout_c);
        let (b50, b90, b99) = q_errors_on(est, db, &bench_q, &bench_c);
        println!(
            "{name:<8} {:>30} {:>30}",
            format!("{i50:.2}/{i90:.2}/{i99:.2}"),
            format!("{b50:.2}/{b90:.2}/{b99:.2}")
        );
    }
    println!("\nQuery-driven estimators degrade off their training distribution —");
    println!("the paper's explanation for their unstable end-to-end results.");
}
