//! Chaos smoke test: proves the harness survives a hostile estimator
//! and that checkpoint/resume reproduces an uninterrupted run.
//!
//! Phase 1 wraps the PostgreSQL baseline in [`ChaosEst`] at a 20% fault
//! rate across *every* fault class (panics, NaN/±inf/negative/zero
//! values, delays) and runs the tier-1 STATS-CEB workload under
//! estimate timeouts and an executor memory budget. The run must
//! complete with typed failures — no abort.
//!
//! Phase 2 reruns with value faults only (deterministic wall-clock),
//! checkpointing each query; then simulates a kill by truncating the
//! checkpoint file to half its records and resumes. The resumed run
//! must be bit-identical to the uninterrupted one on every
//! deterministic field.
//!
//! Knobs (beyond the shared harness flags):
//! - `--chaos-rate R`     — fault injection probability (default 0.2).
//! - `--chaos-classes L`  — comma-separated fault classes for phase 1:
//!   any of `panic,nan,+inf,-inf,negative,zero,delay`, or `all` /
//!   `values` (default `all`). Phase 2 always restricts itself to the
//!   value classes so resume equality stays wall-clock-deterministic.
//!
//! Exits non-zero on any violation, so CI can gate on it.

use std::time::Duration;

use cardbench_bench::{config_from_env, run_options_from_args};
use cardbench_engine::{CostModel, TrueCardService};
use cardbench_estimators::chaos::{ChaosEst, FaultClass};
use cardbench_estimators::EstimatorKind;
use cardbench_harness::report::table_faults;
use cardbench_harness::{build_estimator, run_workload_with_options, Bench, MethodRun, QueryRun};

fn main() {
    let _trace = cardbench_bench::init_tracing();
    let _run_sp = cardbench_obs::span_with("run", "run", || "chaos-smoke".to_string());
    let cfg = config_from_env();
    let seed = cfg.settings.seed;
    let threads = cfg.threads;
    let rate = arg_value("--chaos-rate")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2);
    let classes = match arg_value("--chaos-classes") {
        Some(spec) => match parse_classes(&spec) {
            Ok(c) => c,
            Err(bad) => {
                eprintln!("[chaos-smoke] unknown fault class `{bad}` in --chaos-classes");
                std::process::exit(2);
            }
        },
        None => FaultClass::ALL.to_vec(),
    };
    eprintln!("[chaos-smoke] building benchmark (seed {seed})...");
    let bench = Bench::build(cfg);
    let cost = CostModel::default();
    let db = &bench.stats_db;
    let wl = &bench.stats_wl;

    // Phase 1: survival under the requested fault classes plus budgets.
    eprintln!(
        "[chaos-smoke] phase 1: {:.0}% chaos ({} classes) over {} queries",
        rate * 100.0,
        classes.len(),
        wl.queries.len()
    );
    let _est_sp = cardbench_obs::span_with("estimator", "run", || "ChaosEst".to_string());
    let built = build_estimator(
        EstimatorKind::Postgres,
        db,
        &bench.stats_train,
        &bench.config.settings,
    );
    let chaos =
        ChaosEst::with_classes(built.est, seed, rate, classes).delay(Duration::from_millis(20));
    let mut opts = run_options_from_args(threads);
    if opts.timeout.is_none() {
        opts.timeout = Some(Duration::from_millis(10));
    }
    if opts.mem_budget_bytes.is_none() {
        opts.mem_budget_bytes = Some(512 << 20);
    }
    let truth = TrueCardService::new();
    let queries = run_workload_with_options(db, wl, &chaos, &truth, &cost, &opts);
    let run = MethodRun {
        kind: EstimatorKind::Postgres,
        train_time: built.train_time,
        model_size: built.model_size,
        queries,
    };
    print!("{}", table_faults(std::slice::from_ref(&run), &wl.name));
    if run.est_failure_total() == 0 {
        eprintln!("[chaos-smoke] FAIL: chaos injected no faults — smoke test is vacuous");
        std::process::exit(1);
    }
    eprintln!(
        "[chaos-smoke] phase 1 OK: {} typed estimate failures, {} fallbacks, {} failed queries, run completed",
        run.est_failure_total(),
        run.fallback_total(),
        run.failed_queries(),
    );

    // Phase 2: kill mid-run (simulated by truncating the checkpoint)
    // and resume; value faults only so wall-clock stays deterministic.
    eprintln!("[chaos-smoke] phase 2: checkpoint, truncate, resume");
    let ckpt = std::env::temp_dir().join(format!(
        "cardbench_chaos_smoke_{}.jsonl",
        std::process::id()
    ));
    let value_chaos = |s: u64| {
        let built = build_estimator(
            EstimatorKind::Postgres,
            db,
            &bench.stats_train,
            &bench.config.settings,
        );
        ChaosEst::with_classes(built.est, s, rate, FaultClass::VALUES.to_vec())
    };
    let mut copts = cardbench_harness::RunOptions::with_threads(threads);
    copts.checkpoint = Some(ckpt.clone());
    let full = run_workload_with_options(db, wl, &value_chaos(seed), &truth, &cost, &copts);

    let text = std::fs::read_to_string(&ckpt).expect("checkpoint written");
    let lines: Vec<&str> = text.lines().collect();
    let keep = lines.len() / 2;
    let torn: String = lines[..keep].iter().map(|l| format!("{l}\n")).collect();
    std::fs::write(&ckpt, torn).expect("truncate checkpoint");
    eprintln!(
        "[chaos-smoke] kept {keep}/{} checkpoint records, resuming",
        lines.len()
    );
    copts.resume = true;
    let resumed = run_workload_with_options(db, wl, &value_chaos(seed), &truth, &cost, &copts);
    let _ = std::fs::remove_file(&ckpt);

    if let Err(msg) = deterministic_eq(&full, &resumed) {
        eprintln!("[chaos-smoke] FAIL: resumed run diverged: {msg}");
        std::process::exit(1);
    }
    eprintln!(
        "[chaos-smoke] phase 2 OK: resumed run bit-identical on {} queries",
        resumed.len()
    );
    println!("chaos smoke OK");
}

/// Compares every deterministic field of two runs; wall-clock timings
/// are excluded (they can never match across processes).
fn deterministic_eq(a: &[QueryRun], b: &[QueryRun]) -> Result<(), String> {
    if a.len() != b.len() {
        return Err(format!("query count {} vs {}", a.len(), b.len()));
    }
    for (x, y) in a.iter().zip(b) {
        if x.id != y.id {
            return Err(format!("query order: Q{} vs Q{}", x.id, y.id));
        }
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        if bits(&x.sub_est_cards) != bits(&y.sub_est_cards) {
            return Err(format!("Q{}: sub_est_cards differ", x.id));
        }
        if bits(&x.q_errors) != bits(&y.q_errors) {
            return Err(format!("Q{}: q_errors differ", x.id));
        }
        if x.p_error.to_bits() != y.p_error.to_bits() {
            return Err(format!("Q{}: p_error {} vs {}", x.id, x.p_error, y.p_error));
        }
        if x.result_rows != y.result_rows {
            return Err(format!("Q{}: result_rows differ", x.id));
        }
        if x.exec_stats != y.exec_stats {
            return Err(format!("Q{}: exec_stats differ", x.id));
        }
        if x.est_failures != y.est_failures {
            return Err(format!("Q{}: est_failures differ", x.id));
        }
        if x.failure != y.failure {
            return Err(format!(
                "Q{}: failure {:?} vs {:?}",
                x.id, x.failure, y.failure
            ));
        }
        if (x.clamped_subplans, x.fallback_subplans, x.excluded_qerrors)
            != (y.clamped_subplans, y.fallback_subplans, y.excluded_qerrors)
        {
            return Err(format!("Q{}: fault counters differ", x.id));
        }
    }
    Ok(())
}

/// First value of `--flag v` or `--flag=v` in the process arguments.
fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

/// Parses a `--chaos-classes` spec: `all`, `values`, or a
/// comma-separated list of [`FaultClass`] display names.
fn parse_classes(spec: &str) -> Result<Vec<FaultClass>, String> {
    match spec {
        "all" => return Ok(FaultClass::ALL.to_vec()),
        "values" => return Ok(FaultClass::VALUES.to_vec()),
        _ => {}
    }
    let mut classes = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        match FaultClass::ALL.iter().find(|c| c.name() == part) {
            Some(c) => classes.push(*c),
            None => return Err(part.to_string()),
        }
    }
    Ok(classes)
}
