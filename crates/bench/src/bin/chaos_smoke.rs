//! Chaos smoke test: proves the harness survives a hostile estimator
//! and that checkpoint/resume reproduces an uninterrupted run.
//!
//! Phase 1 wraps the PostgreSQL baseline in [`ChaosEst`] at a 20% fault
//! rate across *every* fault class (panics, NaN/±inf/negative/zero
//! values, delays) and runs the tier-1 STATS-CEB workload under
//! estimate timeouts and an executor memory budget. The run must
//! complete with typed failures — no abort.
//!
//! Phase 2 reruns with value faults only (deterministic wall-clock),
//! checkpointing each query; then simulates a kill by truncating the
//! checkpoint file to half its records and resumes. The resumed run
//! must be bit-identical to the uninterrupted one on every
//! deterministic field.
//!
//! Exits non-zero on any violation, so CI can gate on it.

use std::time::Duration;

use cardbench_bench::{config_from_env, run_options_from_args};
use cardbench_engine::{CostModel, TrueCardService};
use cardbench_estimators::chaos::{ChaosEst, FaultClass};
use cardbench_estimators::EstimatorKind;
use cardbench_harness::report::table_faults;
use cardbench_harness::{build_estimator, run_workload_with_options, Bench, MethodRun, QueryRun};

fn main() {
    let cfg = config_from_env();
    let seed = cfg.settings.seed;
    let threads = cfg.threads;
    eprintln!("[chaos-smoke] building benchmark (seed {seed})...");
    let bench = Bench::build(cfg);
    let cost = CostModel::default();
    let db = &bench.stats_db;
    let wl = &bench.stats_wl;

    // Phase 1: survival under every fault class plus budgets.
    eprintln!(
        "[chaos-smoke] phase 1: 20% chaos (all classes) over {} queries",
        wl.queries.len()
    );
    let built = build_estimator(
        EstimatorKind::Postgres,
        db,
        &bench.stats_train,
        &bench.config.settings,
    );
    let chaos = ChaosEst::new(built.est, seed, 0.2).delay(Duration::from_millis(20));
    let mut opts = run_options_from_args(threads);
    if opts.timeout.is_none() {
        opts.timeout = Some(Duration::from_millis(10));
    }
    if opts.mem_budget_bytes.is_none() {
        opts.mem_budget_bytes = Some(512 << 20);
    }
    let truth = TrueCardService::new();
    let queries = run_workload_with_options(db, wl, &chaos, &truth, &cost, &opts);
    let run = MethodRun {
        kind: EstimatorKind::Postgres,
        train_time: built.train_time,
        model_size: built.model_size,
        queries,
    };
    print!("{}", table_faults(std::slice::from_ref(&run), &wl.name));
    if run.est_failure_total() == 0 {
        eprintln!("[chaos-smoke] FAIL: chaos injected no faults — smoke test is vacuous");
        std::process::exit(1);
    }
    eprintln!(
        "[chaos-smoke] phase 1 OK: {} typed estimate failures, {} fallbacks, {} failed queries, run completed",
        run.est_failure_total(),
        run.fallback_total(),
        run.failed_queries(),
    );

    // Phase 2: kill mid-run (simulated by truncating the checkpoint)
    // and resume; value faults only so wall-clock stays deterministic.
    eprintln!("[chaos-smoke] phase 2: checkpoint, truncate, resume");
    let ckpt = std::env::temp_dir().join(format!(
        "cardbench_chaos_smoke_{}.jsonl",
        std::process::id()
    ));
    let value_chaos = |s: u64| {
        let built = build_estimator(
            EstimatorKind::Postgres,
            db,
            &bench.stats_train,
            &bench.config.settings,
        );
        ChaosEst::with_classes(built.est, s, 0.2, FaultClass::VALUES.to_vec())
    };
    let mut copts = cardbench_harness::RunOptions::with_threads(threads);
    copts.checkpoint = Some(ckpt.clone());
    let full = run_workload_with_options(db, wl, &value_chaos(seed), &truth, &cost, &copts);

    let text = std::fs::read_to_string(&ckpt).expect("checkpoint written");
    let lines: Vec<&str> = text.lines().collect();
    let keep = lines.len() / 2;
    let torn: String = lines[..keep].iter().map(|l| format!("{l}\n")).collect();
    std::fs::write(&ckpt, torn).expect("truncate checkpoint");
    eprintln!(
        "[chaos-smoke] kept {keep}/{} checkpoint records, resuming",
        lines.len()
    );
    copts.resume = true;
    let resumed = run_workload_with_options(db, wl, &value_chaos(seed), &truth, &cost, &copts);
    let _ = std::fs::remove_file(&ckpt);

    if let Err(msg) = deterministic_eq(&full, &resumed) {
        eprintln!("[chaos-smoke] FAIL: resumed run diverged: {msg}");
        std::process::exit(1);
    }
    eprintln!(
        "[chaos-smoke] phase 2 OK: resumed run bit-identical on {} queries",
        resumed.len()
    );
    println!("chaos smoke OK");
}

/// Compares every deterministic field of two runs; wall-clock timings
/// are excluded (they can never match across processes).
fn deterministic_eq(a: &[QueryRun], b: &[QueryRun]) -> Result<(), String> {
    if a.len() != b.len() {
        return Err(format!("query count {} vs {}", a.len(), b.len()));
    }
    for (x, y) in a.iter().zip(b) {
        if x.id != y.id {
            return Err(format!("query order: Q{} vs Q{}", x.id, y.id));
        }
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        if bits(&x.sub_est_cards) != bits(&y.sub_est_cards) {
            return Err(format!("Q{}: sub_est_cards differ", x.id));
        }
        if bits(&x.q_errors) != bits(&y.q_errors) {
            return Err(format!("Q{}: q_errors differ", x.id));
        }
        if x.p_error.to_bits() != y.p_error.to_bits() {
            return Err(format!("Q{}: p_error {} vs {}", x.id, x.p_error, y.p_error));
        }
        if x.result_rows != y.result_rows {
            return Err(format!("Q{}: result_rows differ", x.id));
        }
        if x.exec_stats != y.exec_stats {
            return Err(format!("Q{}: exec_stats differ", x.id));
        }
        if x.est_failures != y.est_failures {
            return Err(format!("Q{}: est_failures differ", x.id));
        }
        if x.failure != y.failure {
            return Err(format!(
                "Q{}: failure {:?} vs {:?}",
                x.id, x.failure, y.failure
            ));
        }
        if (x.clamped_subplans, x.fallback_subplans) != (y.clamped_subplans, y.fallback_subplans) {
            return Err(format!("Q{}: fault counters differ", x.id));
        }
    }
    Ok(())
}
