//! Ablation: bushy DP enumeration vs the classic left-deep-only search
//! space, under true cardinalities. Quantifies what exact DP buys the
//! engine on the STATS-CEB analog (cost-model units and wall clock).

use std::time::Instant;

use cardbench_engine::{exact_cardinality, execute, optimize_with, plan_cost, CardMap, CostModel};
use cardbench_harness::Bench;
use cardbench_query::{connected_subsets, BoundQuery, SubPlanQuery};

fn main() {
    let _trace = cardbench_bench::init_tracing();
    let bench = Bench::build(cardbench_bench::config_from_env());
    let db = &bench.stats_db;
    let cost = CostModel::default();
    let mut total_cost = [0.0f64; 2];
    let mut total_wall = [0.0f64; 2];
    let mut differing = 0usize;
    for wq in &bench.stats_wl.queries {
        let bound = BoundQuery::bind(&wq.query, db.catalog()).unwrap();
        let mut cards = CardMap::new();
        for mask in connected_subsets(&wq.query) {
            let sp = SubPlanQuery::project(&wq.query, mask);
            cards.insert(mask, exact_cardinality(db, &sp.query).unwrap());
        }
        let mut costs = [0.0f64; 2];
        for (i, left_deep) in [false, true].into_iter().enumerate() {
            let plan = optimize_with(&wq.query, &bound, db, &cards, &cost, left_deep);
            costs[i] = plan_cost(&plan, db, &bound, &cost, &|m| cards.rows(m));
            total_cost[i] += costs[i];
            // Warm then time.
            execute(&plan, &bound, db);
            let t0 = Instant::now();
            execute(&plan, &bound, db);
            total_wall[i] += t0.elapsed().as_secs_f64();
        }
        if (costs[0] - costs[1]).abs() > 1e-6 {
            differing += 1;
        }
    }
    println!(
        "bushy DP:   model cost {:>12.0}  wall {:>8.3}s",
        total_cost[0], total_wall[0]
    );
    println!(
        "left-deep:  model cost {:>12.0}  wall {:>8.3}s",
        total_cost[1], total_wall[1]
    );
    println!(
        "{differing}/{} queries get a strictly cheaper bushy plan; cost ratio {:.4}",
        bench.stats_wl.queries.len(),
        total_cost[1] / total_cost[0].max(1e-12)
    );
}
