//! Adaptive feedback smoke test: a short warmup + temporal-shift replay
//! proving the feedback loop's contracts end to end, sized for CI.
//!
//! Runs the four-pass drift experiment (warmup, warm replay, post-shift,
//! recovered) with the PostgreSQL baseline wrapped in the feedback
//! estimator, then asserts:
//!
//! - the warm replay and the recovered pass are oracle-exact (median
//!   Q-Error and P-Error 1.0) — accuracy improved with queries seen and
//!   survived the data shift;
//! - the store actually observed and overrode (non-vacuous);
//! - with `--feedback off` the wrapper is bit-identical to the parallel
//!   harness — adaptivity is strictly opt-in.
//!
//! Knobs (beyond the shared harness flags):
//! - `--feedback MODE`      — `on` (default) runs the drift experiment;
//!   `off` runs only the bit-identity differential.
//! - `--feedback-warmup N`  — template warmup threshold (default 4).
//!
//! Exits non-zero on any violation, so CI can gate on it. `--trace`
//! records the `feedback` spans and `cardbench_feedback_*` metric
//! families validated by `validate_trace`.

use cardbench_bench::{config_from_env, run_options_from_args};
use cardbench_engine::{CostModel, Database, TrueCardService};
use cardbench_estimators::lw::TrainingSet;
use cardbench_estimators::EstimatorKind;
use cardbench_feedback::{FeedbackConfig, FeedbackEst, FeedbackStore};
use cardbench_harness::{
    build_estimator, median_p_error, median_q_error, run_adaptive_experiment, run_workload,
    run_workload_adaptive,
};
use cardbench_workload::stats_ceb;

fn main() {
    let _trace = cardbench_bench::init_tracing();
    let _run_sp = cardbench_obs::span_with("run", "run", || "adaptive-smoke".to_string());
    let cfg = config_from_env();
    let threads = cfg.threads;
    let mode = arg_value("--feedback").unwrap_or_else(|| "on".to_string());
    if !matches!(mode.as_str(), "on" | "off") {
        eprintln!("[adaptive-smoke] --feedback must be `on` or `off`, got `{mode}`");
        std::process::exit(2);
    }
    let fb_cfg = FeedbackConfig {
        warmup: arg_value("--feedback-warmup")
            .and_then(|v| v.parse().ok())
            .unwrap_or(FeedbackConfig::default().warmup),
        ..FeedbackConfig::default()
    };
    let opts = run_options_from_args(threads);
    let cost = CostModel::default();

    eprintln!(
        "[adaptive-smoke] building STATS dataset + workload (seed {})...",
        cfg.settings.seed
    );
    // The drift experiment regenerates its own pre-/post-cutoff halves
    // from the same config; the workload shares the schema.
    let db = Database::new(cardbench_datagen::stats_catalog(&cfg.stats));
    let wl = stats_ceb(&db, &cfg.stats_workload);
    assert!(!wl.queries.is_empty(), "adaptive smoke workload is empty");

    if mode == "off" {
        differential(&cfg, &db, &wl, &cost);
        println!("adaptive smoke OK (feedback off: bit-identical)");
        return;
    }

    eprintln!(
        "[adaptive-smoke] drift experiment: {} queries x 4 passes, warmup {}",
        wl.queries.len(),
        fb_cfg.warmup
    );
    let exp = run_adaptive_experiment(
        &cfg.stats,
        &wl,
        EstimatorKind::Postgres,
        &TrainingSet::default(),
        &cfg.settings,
        &cost,
        fb_cfg,
        &opts,
    );
    let (qw, qr, qp, qc) = (
        median_q_error(&exp.warmup),
        median_q_error(&exp.replay),
        median_q_error(&exp.post_shift),
        median_q_error(&exp.recovered),
    );
    eprintln!(
        "[adaptive-smoke] median q-error: warmup {qw:.4} | replay {qr:.4} | post-shift {qp:.4} \
         | recovered {qc:.4}"
    );
    eprintln!(
        "[adaptive-smoke] store: {} observations, {} overrides, {} corrections, {} rejected",
        exp.stats.observations, exp.stats.overrides, exp.stats.corrections, exp.stats.rejected
    );
    let fail = |msg: &str| {
        eprintln!("[adaptive-smoke] FAIL: {msg}");
        std::process::exit(1);
    };
    if (qr - 1.0).abs() > 1e-9 || (median_p_error(&exp.replay) - 1.0).abs() > 1e-9 {
        fail("warm replay is not oracle-exact");
    }
    if qr > qw + 1e-9 {
        fail("replay worse than warmup: feedback made accuracy worse");
    }
    if (qc - 1.0).abs() > 1e-9 {
        fail("no recovery after the temporal shift");
    }
    if exp.stats.observations == 0 || exp.stats.overrides == 0 {
        fail("store never observed/overrode — smoke test is vacuous");
    }
    println!("adaptive smoke OK");
}

/// `--feedback off`: the adaptive runner with a disabled wrapper must be
/// bit-identical (non-timing fields) to the parallel harness.
fn differential(
    cfg: &cardbench_harness::BenchConfig,
    db: &Database,
    wl: &cardbench_workload::Workload,
    cost: &CostModel,
) {
    use std::sync::Arc;
    eprintln!("[adaptive-smoke] feedback off: bit-identity differential");
    let store = Arc::new(FeedbackStore::default());
    let built = build_estimator(
        EstimatorKind::Postgres,
        db,
        &TrainingSet::default(),
        &cfg.settings,
    );
    let wrapped = FeedbackEst::new(built.est, Arc::clone(&store), false);
    let truth = TrueCardService::new();
    let adaptive = run_workload_adaptive(
        db,
        wl,
        &wrapped,
        &store,
        &truth,
        cost,
        &cardbench_harness::RunOptions::default(),
    );
    let baseline = run_workload(db, wl, wrapped.inner(), &truth, cost);
    assert_eq!(adaptive.len(), baseline.len());
    for (a, r) in adaptive.iter().zip(&baseline) {
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        if a.id != r.id
            || bits(&a.sub_est_cards) != bits(&r.sub_est_cards)
            || a.p_error.to_bits() != r.p_error.to_bits()
            || a.result_rows != r.result_rows
        {
            eprintln!(
                "[adaptive-smoke] FAIL: Q{} diverged with feedback off",
                a.id
            );
            std::process::exit(1);
        }
    }
}

/// First value of `--flag v` or `--flag=v` in the process arguments.
fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}
