//! Regenerates paper Figure 3: practicality aspects (inference latency,
//! model size, training time) per estimator on both workloads.

use cardbench_bench::{config_from_env, run_full};
use cardbench_harness::report::figure3;

fn main() {
    let _trace = cardbench_bench::init_tracing();
    let r = run_full(config_from_env());
    print!("{}", figure3(&r.imdb_runs, "JOB-LIGHT"));
    println!();
    print!("{}", figure3(&r.stats_runs, "STATS-CEB"));
}
