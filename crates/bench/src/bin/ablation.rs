//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! - A1: FSPN multi-leaves on/off (FLAT vs DeepDB structure) — accuracy
//!   and model size on correlated data.
//! - A2: fanout join estimation vs join-uniformity, holding the
//!   per-table model exact — isolates what the fanout framework buys.
//! - A3: NeuroCard FOJ sample-size sweep — how much of its error is
//!   sample starvation (paper O3).
//! - A4: discretization budget sweep for BayesCard.

use cardbench_datagen::{stats_catalog, StatsConfig};
use cardbench_engine::{exact_cardinality, Database};
use cardbench_estimators::bayescard::BayesCard;
use cardbench_estimators::deepdb::DeepDb;
use cardbench_estimators::fanout::{exact_fanout_estimator, exact_selectivity, uniform_join_card};
use cardbench_estimators::flat::Flat;
use cardbench_estimators::neurocard::{NeuroCardConfig, NeuroCardE};
use cardbench_estimators::CardEst;
use cardbench_metrics::{percentile, q_error};
use cardbench_ml::autoreg::ArConfig;
use cardbench_query::{connected_subsets, BoundQuery, Region, SubPlanQuery};
use cardbench_workload::{stats_ceb, Workload, WorkloadConfig};

/// Median sub-plan Q-Error of a closure-estimator over the workload.
fn median_q_error(
    db: &Database,
    wl: &Workload,
    mut estimate: impl FnMut(&SubPlanQuery) -> f64,
) -> f64 {
    let mut errs = Vec::new();
    for wq in &wl.queries {
        for mask in connected_subsets(&wq.query) {
            let sp = SubPlanQuery::project(&wq.query, mask);
            let t = exact_cardinality(db, &sp.query).unwrap();
            errs.push(q_error(estimate(&sp), t));
        }
    }
    percentile(&errs, 0.5)
}

fn main() {
    let _trace = cardbench_bench::init_tracing();
    let cfg = StatsConfig {
        scale: 0.01,
        coupling: 0.8,
        ..StatsConfig::default()
    };
    let db = Database::new(stats_catalog(&cfg));
    let wl = stats_ceb(
        &db,
        &WorkloadConfig {
            templates: 30,
            queries: 40,
            ..WorkloadConfig::stats_ceb(17)
        },
    );
    println!(
        "Ablations on STATS scale {} ({} queries, {} rows)\n",
        cfg.scale,
        wl.queries.len(),
        db.catalog().total_rows()
    );

    // A1: multi-leaves.
    let deep = DeepDb::fit(&db, 24, 0);
    let flat = Flat::fit(&db, 24, 0);
    let q_deep = median_q_error(&db, &wl, |sp| deep.estimate(&db, sp));
    let q_flat = median_q_error(&db, &wl, |sp| flat.estimate(&db, sp));
    println!(
        "A1  SPN plain (DeepDB): median q-error {q_deep:.3}, {} nodes, {}B",
        deep.node_count(),
        deep.model_size_bytes()
    );
    println!(
        "A1  SPN+multileaf (FLAT): median q-error {q_flat:.3}, {} nodes, {}B\n",
        flat.node_count(),
        flat.model_size_bytes()
    );

    // A2: fanout framework vs join uniformity with exact per-table info.
    let fanout = exact_fanout_estimator(&db, 24);
    let q_fanout = median_q_error(&db, &wl, |sp| fanout.estimate(&db, sp));
    let q_uniform = median_q_error(&db, &wl, |sp| {
        let bound = BoundQuery::bind(&sp.query, db.catalog()).unwrap();
        let sels: Vec<f64> = bound
            .tables
            .iter()
            .map(|bt| {
                let preds: Vec<(usize, Region)> = bt
                    .predicates
                    .iter()
                    .map(|p| (p.column, p.region.clone()))
                    .collect();
                exact_selectivity(&db, bt.id, &preds)
            })
            .collect();
        uniform_join_card(&db, &bound, &sels)
    });
    println!("A2  exact sel + join uniformity: median q-error {q_uniform:.3}");
    println!("A2  exact sel + fanout framework: median q-error {q_fanout:.3}\n");

    // A3: NeuroCard sample-size sweep.
    for sample_rows in [500usize, 2000, 8000] {
        let nc = NeuroCardE::fit(
            &db,
            &NeuroCardConfig {
                sample_rows,
                max_bins: 16,
                ar: ArConfig {
                    epochs: 2,
                    samples: 150,
                    ..ArConfig::default()
                },
                seed: 3,
            },
        );
        let q = median_q_error(&db, &wl, |sp| nc.estimate(&db, sp));
        println!("A3  NeuroCard^E FOJ sample {sample_rows:>5}: median q-error {q:.3}");
    }
    println!();

    // A4: BayesCard bin budget.
    for bins in [8usize, 24, 64] {
        let bc = BayesCard::fit(&db, bins);
        let q = median_q_error(&db, &wl, |sp| bc.estimate(&db, sp));
        println!(
            "A4  BayesCard bins {bins:>3}: median q-error {q:.3}, size {}B",
            bc.model_size_bytes()
        );
    }
}
