//! Regenerates paper Table 4: end-to-end improvement by number of joined
//! tables on STATS-CEB.

use cardbench_bench::{config_from_env, run_full};
use cardbench_harness::report::table4;

fn main() {
    let _trace = cardbench_bench::init_tracing();
    let r = run_full(config_from_env());
    print!("{}", table4(&r.stats_runs));
}
