//! Regenerates paper Table 6: the dynamic-update experiment on STATS.

use cardbench_engine::CostModel;
use cardbench_harness::update_exp::{run_update_experiment, table6};
use cardbench_harness::Bench;

fn main() {
    let _trace = cardbench_bench::init_tracing();
    let cfg = cardbench_bench::config_from_env();
    let bench = Bench::build(cfg.clone());
    let results = run_update_experiment(
        &cfg.stats,
        &bench.stats_wl,
        &cfg.settings,
        &CostModel::default(),
    );
    print!("{}", table6(&results));
}
