//! Regenerates paper Table 7: Q-Error vs P-Error distributions and their
//! correlation with execution time, on both workloads.

use cardbench_bench::{config_from_env, run_full};
use cardbench_harness::report::table7;

fn main() {
    let _trace = cardbench_bench::init_tracing();
    let r = run_full(config_from_env());
    print!("{}", table7(&r.imdb_runs, "JOB-LIGHT"));
    println!();
    print!("{}", table7(&r.stats_runs, "STATS-CEB"));
}
