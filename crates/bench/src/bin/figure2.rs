//! Regenerates the paper Figure 2 case study: annotated plan trees of
//! contrasting estimators on the largest-cardinality STATS-CEB query.

use cardbench_engine::{CostModel, TrueCardService};
use cardbench_estimators::EstimatorKind;
use cardbench_harness::case_study::{case_study, pick_case_query};
use cardbench_harness::{build_estimator, Bench};

fn main() {
    let _trace = cardbench_bench::init_tracing();
    let bench = Bench::build(cardbench_bench::config_from_env());
    let truth = TrueCardService::new();
    let wq = pick_case_query(&bench.stats_wl);
    println!("Figure 2 case study: Q{} (largest true cardinality)", wq.id);
    println!("SQL: {}", cardbench_query::sql::to_sql(&wq.query));
    println!();
    for kind in [
        EstimatorKind::TrueCard,
        EstimatorKind::Flat,
        EstimatorKind::BayesCard,
    ] {
        let built = build_estimator(
            kind,
            &bench.stats_db,
            &bench.stats_train,
            &bench.config.settings,
        );
        println!(
            "{}",
            case_study(
                &bench.stats_db,
                wq,
                built.est.as_ref(),
                &truth,
                &CostModel::default()
            )
        );
    }
}
