//! Sketch-estimator smoke test: the differential contracts that make the
//! sketch path safe to parallelize and stream into, sized for CI.
//!
//! Asserts, on a generated STATS catalog:
//!
//! - the 4-shard parallel build is bit-identical to the sequential scan
//!   (and to the auto-resolved shard count);
//! - `estimate_batch` is bit-identical to one-at-a-time `estimate` over
//!   every connected sub-plan of a workload;
//! - streaming the temporal-split insert delta into the stale model
//!   lands on exactly the from-scratch rebuild (refresh-in-place);
//! - a churn delete stream is absorbed (counts reverse, saturate at
//!   zero) and estimates stay finite under poisonous regions.
//!
//! Exits non-zero on any violation, so CI can gate on it. `--trace`
//! records the `sketch_build` span and the `cardbench_sketch_*` metric
//! families validated by `validate_trace`.

use cardbench_bench::config_from_env;
use cardbench_datagen::stats::{churn_sample, temporal_split, SPLIT_DAY};
use cardbench_engine::Database;
use cardbench_estimators::CardEst;
use cardbench_query::{connected_subsets, JoinQuery, Region, SubPlanQuery, TableMask};
use cardbench_sketch::SketchEst;
use cardbench_storage::TableId;
use cardbench_workload::stats_ceb;

fn fail(msg: &str) -> ! {
    eprintln!("[sketch-smoke] FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let _trace = cardbench_bench::init_tracing();
    let _run_sp = cardbench_obs::span_with("run", "run", || "sketch-smoke".to_string());
    let cfg = config_from_env();
    let sketch_cfg = &cfg.settings.sketch;

    eprintln!(
        "[sketch-smoke] building STATS dataset + workload (seed {})...",
        cfg.settings.seed
    );
    let db = Database::new(cardbench_datagen::stats_catalog(&cfg.stats));
    let wl = stats_ceb(&db, &cfg.stats_workload);
    assert!(!wl.queries.is_empty(), "sketch smoke workload is empty");

    // Sharded build bit-identity: sequential, 4-shard, auto.
    let sequential = SketchEst::fit_sharded(&db, sketch_cfg, 1);
    let sharded = SketchEst::fit_sharded(&db, sketch_cfg, 4);
    let auto = SketchEst::fit(&db, sketch_cfg);
    if sequential.state_digest() != sharded.state_digest() {
        fail("4-shard build diverged from the sequential scan");
    }
    if sequential.state_digest() != auto.state_digest() {
        fail("auto-shard build diverged from the sequential scan");
    }
    eprintln!(
        "[sketch-smoke] sharded build bit-identical ({} B model)",
        sequential.model_size_bytes()
    );

    // Batch/sequential estimate bit-identity over every sub-plan.
    let subs: Vec<SubPlanQuery> = wl
        .queries
        .iter()
        .flat_map(|wq| {
            connected_subsets(&wq.query)
                .into_iter()
                .map(|mask| SubPlanQuery::project(&wq.query, mask))
        })
        .collect();
    let batched = sequential.estimate_batch(&db, &subs);
    if batched.len() != subs.len() {
        fail("estimate_batch returned the wrong arity");
    }
    for (sub, b) in subs.iter().zip(&batched) {
        let single = sequential.estimate(&db, sub);
        if single.to_bits() != b.to_bits() {
            fail(&format!(
                "batch {b} vs single {single} on {:?}",
                sub.query.tables
            ));
        }
    }
    eprintln!(
        "[sketch-smoke] estimate_batch bit-identical over {} sub-plans",
        subs.len()
    );

    // Refresh-in-place lands on the exact rebuild.
    let full = cardbench_datagen::stats_catalog(&cfg.stats);
    let (stale_cat, inserts) = temporal_split(&full, SPLIT_DAY);
    let stale_db = Database::new(stale_cat);
    let mut refreshed = SketchEst::fit(&stale_db, sketch_cfg);
    let mut shifted = stale_db;
    for (t, d) in inserts.iter().enumerate() {
        shifted
            .catalog_mut()
            .table_mut(TableId(t))
            .append_rows(d)
            .expect("aligned schemas");
    }
    shifted.refresh();
    refreshed.apply_inserts(&shifted, &inserts);
    let rebuilt = SketchEst::fit_sharded(&shifted, sketch_cfg, 1);
    if refreshed.state_digest() != rebuilt.state_digest() {
        fail("insert-stream refresh diverged from the full rebuild");
    }
    let delta_rows: usize = inserts.iter().map(|t| t.row_count()).sum();
    eprintln!("[sketch-smoke] refresh of {delta_rows} streamed rows matches the rebuild");

    // Delete stream: absorbed, state changes, estimates stay sane.
    let mut churned = sequential.clone();
    let churn = churn_sample(db.catalog(), 0.25, cfg.settings.seed);
    if churn.iter().all(|t| t.row_count() == 0) {
        fail("churn sample is empty — delete path unexercised");
    }
    let before = churned.state_digest();
    churned.apply_deletes(&churn);
    if churned.state_digest() == before {
        fail("delete stream did not change the sketch state");
    }

    // Poison grid: hostile regions on a key and a filterable column.
    let extremes = [i64::MIN, -1, 0, 1, i64::MAX];
    for est in [&sequential, &churned] {
        for lo in extremes {
            for hi in extremes {
                for column in ["Id", "Reputation"] {
                    let sub = SubPlanQuery {
                        mask: TableMask::single(0),
                        query: JoinQuery::single(
                            "users",
                            vec![cardbench_query::Predicate {
                                table: 0,
                                column: column.to_string(),
                                region: Region::Range { lo, hi },
                            }],
                        ),
                    };
                    let e = est.estimate(&db, &sub);
                    if !e.is_finite() || e < 0.0 {
                        fail(&format!("poison region [{lo}, {hi}] on {column}: {e}"));
                    }
                }
            }
        }
    }
    eprintln!("[sketch-smoke] delete stream + poison grid: finite and non-negative");

    println!("sketch smoke OK");
}
