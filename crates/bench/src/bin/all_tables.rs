//! Runs the full evaluation once and prints every table and figure —
//! the recommended entry point (one training pass, all outputs). Also
//! writes machine-readable summaries to `cardbench_results.json`.

use cardbench_datagen::dataset_profile;
use cardbench_engine::{CostModel, TrueCardService};
use cardbench_estimators::EstimatorKind;
use cardbench_harness::case_study::{case_study, pick_case_query};
use cardbench_harness::report::{
    figure1_dot, figure3, table1, table2, table3, table4, table4_qerrors, table5, table7,
    table_exec_counters,
};
use cardbench_harness::update_exp::{run_update_experiment, table6};
use cardbench_harness::{build_estimator, RunResults};

fn main() {
    let _trace = cardbench_bench::init_tracing();
    let cfg = cardbench_bench::config_from_env();
    let r = cardbench_bench::run_full(cfg.clone());
    let imdb_prof = dataset_profile("IMDB", r.bench.imdb_db.catalog());
    let stats_prof = dataset_profile("STATS", r.bench.stats_db.catalog());
    println!("{}", table1(&imdb_prof, &stats_prof));
    println!(
        "{}",
        table2(
            &r.bench.imdb_db,
            &r.bench.imdb_wl,
            &r.bench.stats_db,
            &r.bench.stats_wl
        )
    );
    println!("{}", table3(&r.imdb_runs, &r.stats_runs));
    println!("{}", table_exec_counters(&r.imdb_runs, "JOB-LIGHT"));
    println!("{}", table_exec_counters(&r.stats_runs, "STATS-CEB"));
    println!("{}", table4(&r.stats_runs));
    println!("{}", table4_qerrors(&r.stats_runs));
    println!("{}", table5(&r.stats_runs));
    let updates = run_update_experiment(
        &cfg.stats,
        &r.bench.stats_wl,
        &cfg.settings,
        &CostModel::default(),
    );
    println!("{}", table6(&updates));
    println!("{}", table7(&r.imdb_runs, "JOB-LIGHT"));
    println!("{}", table7(&r.stats_runs, "STATS-CEB"));
    println!("Figure 1 (DOT):\n{}", figure1_dot(&r.bench.stats_db));
    let truth = TrueCardService::new();
    let wq = pick_case_query(&r.bench.stats_wl);
    println!("Figure 2 case study: Q{}", wq.id);
    for kind in [
        EstimatorKind::TrueCard,
        EstimatorKind::Flat,
        EstimatorKind::BayesCard,
    ] {
        let built = build_estimator(
            kind,
            &r.bench.stats_db,
            &r.bench.stats_train,
            &r.bench.config.settings,
        );
        println!(
            "{}",
            case_study(
                &r.bench.stats_db,
                wq,
                built.est.as_ref(),
                &truth,
                &CostModel::default()
            )
        );
    }
    println!("{}", figure3(&r.imdb_runs, "JOB-LIGHT"));
    println!("{}", figure3(&r.stats_runs, "STATS-CEB"));
    let json = RunResults::collect(&r.imdb_runs, &r.stats_runs);
    let path = std::path::Path::new("cardbench_results.json");
    match json.write_json(path) {
        Ok(()) => eprintln!("[cardbench] wrote {}", path.display()),
        Err(e) => eprintln!("[cardbench] could not write {}: {e}", path.display()),
    }
}
