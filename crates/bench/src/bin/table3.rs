//! Regenerates paper Table 3: overall end-to-end performance of every
//! estimator on both workloads.

use cardbench_bench::{config_from_env, run_full};
use cardbench_harness::report::table3;

fn main() {
    let _trace = cardbench_bench::init_tracing();
    let r = run_full(config_from_env());
    print!("{}", table3(&r.imdb_runs, &r.stats_runs));
}
