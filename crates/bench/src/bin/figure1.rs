//! Regenerates paper Figure 1: the STATS schema join graph (DOT format).

use cardbench_datagen::stats_catalog;
use cardbench_engine::Database;
use cardbench_harness::report::figure1_dot;

fn main() {
    let _trace = cardbench_bench::init_tracing();
    let cfg = cardbench_bench::config_from_env();
    let db = Database::new(stats_catalog(&cfg.stats));
    print!("{}", figure1_dot(&db));
}
