//! RD3 demo: optimizing an estimator toward P-Error (the paper's
//! proposed research direction) instead of Q-Error.
//!
//! Wraps MSCN in the `PErrorCalibrated` adapter, calibrated on a held-out
//! validation slice of the training workload, and compares P-Error and
//! end-to-end time before/after on STATS-CEB.

use cardbench_engine::{CostModel, TrueCardService};
use cardbench_estimators::calibrate::PErrorCalibrated;
use cardbench_estimators::mscn::Mscn;
use cardbench_estimators::EstimatorKind;
use cardbench_harness::{run_workload, Bench, MethodRun};
use cardbench_metrics::percentile_triple;

fn summarize(name: &str, queries: Vec<cardbench_harness::QueryRun>) {
    let run = MethodRun {
        kind: EstimatorKind::Mscn,
        train_time: std::time::Duration::ZERO,
        model_size: 0,
        queries,
    };
    let (p50, p90, p99) = percentile_triple(&run.all_p_errors());
    println!(
        "{name:<22} e2e {:>10.3?}  P-Error 50/90/99%: {p50:.3}/{p90:.3}/{p99:.3}",
        run.e2e_total()
    );
}

fn main() {
    let _trace = cardbench_bench::init_tracing();
    let bench = Bench::build(cardbench_bench::config_from_env());
    let db = &bench.stats_db;
    let cost = CostModel::default();
    let truth = TrueCardService::new();

    let raw = Mscn::fit(db, &bench.stats_train, &bench.config.settings.mscn);
    let raw_for_run = Mscn::fit(db, &bench.stats_train, &bench.config.settings.mscn);
    let runs = run_workload(db, &bench.stats_wl, &raw_for_run, &truth, &cost);
    summarize("MSCN (raw)", runs);

    // Calibrate on a validation slice of the *training* workload — the
    // benchmark queries stay unseen.
    let validation: Vec<_> = bench
        .stats_train
        .queries
        .iter()
        .filter(|q| q.table_count() >= 2)
        .take(40)
        .cloned()
        .collect();
    let calibrated = PErrorCalibrated::calibrate(raw, db, &validation, &truth, &cost);
    println!("learned per-join-count factors: {:?}", calibrated.factors());
    let runs = run_workload(db, &bench.stats_wl, &calibrated, &truth, &cost);
    summarize("MSCN (P-calibrated)", runs);
}
