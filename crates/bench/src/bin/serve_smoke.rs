//! Serving smoke test: stands up the concurrent estimation service,
//! drives a short load through concurrent coalesced sessions, and
//! asserts the service's invariants held — nonzero completed queries,
//! zero unattributed faults, no deadlock, and (optionally) a live
//! Prometheus endpoint answering scrapes mid-run.
//!
//! Knobs (beyond the shared `--trace` / `CARDBENCH_FAST` harness knobs):
//! - `--sessions N`      — concurrent sessions (default 4).
//! - `--arrival-qps F`   — open-loop arrival rate; omitted = closed loop.
//! - `--coalesce-max N`  — max jobs combined per drain tick (default 64).
//! - `--prom-addr ADDR`  — serve live metrics over HTTP at `ADDR`
//!   (e.g. `127.0.0.1:0`) and self-scrape once during the run.
//! - `--sequential`      — disable coalescing (baseline mode).
//!
//! Exits non-zero on any violation, so CI can gate on it.

use std::sync::Arc;

use cardbench_bench::config_from_env;
use cardbench_engine::{CostModel, Database, TrueCardService};
use cardbench_estimators::{CardEst, EstimatorKind};
use cardbench_harness::{build_estimator, Bench};
use cardbench_metrics::percentile;
use cardbench_serve::{run_load, LoadConfig, PromServer, ServeConfig, Server};

fn main() {
    let _trace = cardbench_bench::init_tracing();
    let sessions: usize = arg_value("--sessions")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let arrival_qps: Option<f64> = arg_value("--arrival-qps").and_then(|v| v.parse().ok());
    let coalesce_max: usize = arg_value("--coalesce-max")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let sequential = std::env::args().any(|a| a == "--sequential");

    let cfg = config_from_env();
    eprintln!(
        "[serve-smoke] building benchmark (seed {})...",
        cfg.settings.seed
    );
    let mut bench = Bench::build(cfg);
    let db = Arc::new(std::mem::replace(
        &mut bench.stats_db,
        Database::new(cardbench_storage::Catalog::new()),
    ));
    let wl = bench.stats_wl.clone();
    let built = build_estimator(
        EstimatorKind::Mscn,
        &db,
        &bench.stats_train,
        &bench.config.settings,
    );
    let est: Arc<dyn CardEst> = Arc::from(built.est);

    let server = Arc::new(Server::start(
        Arc::clone(&db),
        Arc::new(TrueCardService::new()),
        est,
        CostModel::default(),
        ServeConfig {
            max_sessions: sessions.max(1),
            coalesce_max,
            sequential,
            ..ServeConfig::default()
        },
    ));
    let prom = arg_value("--prom-addr").map(|addr| {
        let srv = PromServer::bind(&addr).unwrap_or_else(|e| {
            eprintln!("[serve-smoke] FAIL: cannot bind prometheus endpoint {addr}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "[serve-smoke] prometheus endpoint at http://{}",
            srv.local_addr()
        );
        srv
    });

    eprintln!(
        "[serve-smoke] {} sessions, {} mode, {} arrivals over {} queries",
        sessions,
        if sequential {
            "sequential"
        } else {
            "coalesced"
        },
        arrival_qps.map_or("closed-loop".to_string(), |q| format!("{q:.0}/s")),
        wl.queries.len(),
    );
    let report = run_load(
        &server,
        &wl,
        &LoadConfig {
            sessions,
            arrival_qps,
            replays: 1,
            deadline: None,
        },
    );

    // Mid-process scrape: the live endpoint must answer with the serve
    // families while the server still exists.
    if let Some(prom) = &prom {
        let body = prom.scrape().unwrap_or_else(|e| {
            eprintln!("[serve-smoke] FAIL: self-scrape failed: {e}");
            std::process::exit(1);
        });
        let live = cardbench_obs::enabled();
        if live && !body.contains("cardbench_serve_queries_total") {
            eprintln!("[serve-smoke] FAIL: scrape lacks cardbench_serve_queries_total");
            std::process::exit(1);
        }
        eprintln!(
            "[serve-smoke] scrape OK ({} bytes{})",
            body.len(),
            if live { "" } else { ", recording off" }
        );
    }

    let (p50, p95, p99) = (
        percentile(&report.latencies, 0.50),
        percentile(&report.latencies, 0.95),
        percentile(&report.latencies, 0.99),
    );
    eprintln!(
        "[serve-smoke] {} completed, {} failed, {} rejected, {} typed estimate failures in {:.2?} ({:.0} qps)",
        report.completed, report.failed, report.rejected, report.est_failures, report.wall, report.qps,
    );
    eprintln!("[serve-smoke] plan latency p50 {p50:.4}s  p95 {p95:.4}s  p99 {p99:.4}s");

    if report.completed == 0 {
        eprintln!("[serve-smoke] FAIL: no queries completed");
        std::process::exit(1);
    }
    if report.unattributed != 0 {
        eprintln!(
            "[serve-smoke] FAIL: {} unattributed faults (every degradation must be typed)",
            report.unattributed
        );
        std::process::exit(1);
    }
    if report.rejected != 0 {
        eprintln!(
            "[serve-smoke] FAIL: {} rejections under a fitting session cap",
            report.rejected
        );
        std::process::exit(1);
    }
    println!("serve smoke OK");
}

/// First value of `--flag v` or `--flag=v` in the process arguments.
fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}
