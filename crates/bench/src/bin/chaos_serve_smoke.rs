//! Service-level chaos smoke test: drives the estimation service through
//! the three chaos regimes — estimator fault storms (circuit breaker),
//! slow ticks against request deadlines, and drainer panics (watchdog) —
//! and asserts the self-healing invariants held:
//!
//! - every query completes with *typed* fault attribution (zero
//!   unattributed faults, zero failed plans, zero hangs);
//! - a total storm trips the breaker, slots short, and transient faults
//!   are retried;
//! - queue-expired deadlines fast-fail typed without estimator calls;
//! - every injected drainer death is answered by a watchdog restart and
//!   serving recovers to clean answers;
//! - with `--prom-addr`, `/healthz` stays 200 while `/readyz` reports
//!   503 with the breaker open.
//!
//! Knobs: `--sessions N` (default 4), `--prom-addr ADDR`, plus the
//! shared `--trace` / `CARDBENCH_FAST` harness knobs. Exits non-zero on
//! any violation, so CI can gate on it.

use std::sync::Arc;
use std::time::Duration;

use cardbench_bench::config_from_env;
use cardbench_engine::{CostModel, Database, TrueCardService};
use cardbench_estimators::postgres::PostgresEst;
use cardbench_estimators::CardEst;
use cardbench_harness::Bench;
use cardbench_serve::{
    run_load, BreakerConfig, BreakerState, ChaosServeConfig, LoadConfig, LoadReport, PromServer,
    ServeConfig, Server,
};
use cardbench_workload::Workload;

fn fail(msg: &str) -> ! {
    eprintln!("[chaos-serve-smoke] FAIL: {msg}");
    std::process::exit(1);
}

/// Core invariants every phase must satisfy.
fn guard(phase: &str, r: &LoadReport) {
    eprintln!(
        "[chaos-serve-smoke] {phase}: {} completed ({:.0} qps), {} typed failures, \
         {} clean / {} shorted / {} degraded",
        r.completed,
        r.qps,
        r.est_failures,
        r.clean_latencies.len(),
        r.shorted_latencies.len(),
        r.degraded_latencies.len(),
    );
    if r.completed == 0 {
        fail(&format!("{phase}: no queries completed"));
    }
    if r.failed != 0 {
        fail(&format!("{phase}: {} queries failed to plan", r.failed));
    }
    if r.unattributed != 0 {
        fail(&format!(
            "{phase}: {} unattributed faults (every degradation must be typed)",
            r.unattributed
        ));
    }
    if r.rejected != 0 {
        fail(&format!("{phase}: {} unexpected rejections", r.rejected));
    }
}

fn main() {
    let _trace = cardbench_bench::init_tracing();
    let sessions: usize = arg_value("--sessions")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);

    let cfg = config_from_env();
    eprintln!(
        "[chaos-serve-smoke] building benchmark (seed {})...",
        cfg.settings.seed
    );
    let mut bench = Bench::build(cfg);
    let db = Arc::new(std::mem::replace(
        &mut bench.stats_db,
        Database::new(cardbench_storage::Catalog::new()),
    ));
    let wl: Workload = bench.stats_wl.clone();
    let truth = Arc::new(TrueCardService::new());
    let est = || -> Arc<dyn CardEst> { Arc::new(PostgresEst::fit(&db)) };
    let server = |serve: ServeConfig| -> Arc<Server> {
        Arc::new(Server::start(
            Arc::clone(&db),
            Arc::clone(&truth),
            est(),
            CostModel::default(),
            serve,
        ))
    };
    let load = LoadConfig {
        sessions,
        arrival_qps: None,
        replays: 2,
        deadline: None,
    };

    // Phase 1: permanent estimator storm behind a tight breaker. The
    // first tick's slots time out (and are retried — still storming),
    // the breaker opens, and everything after shorts to the fallback.
    let srv = server(ServeConfig {
        max_sessions: sessions.max(1),
        chaos: Some(ChaosServeConfig {
            seed: 17,
            storm_rate: 1.0,
            storm_ticks: u32::MAX,
            storm_stall: Duration::from_millis(5),
            ..ChaosServeConfig::default()
        }),
        breaker: Some(BreakerConfig {
            window: 32,
            open_threshold: 0.5,
            min_samples: 4,
            cooldown: Duration::from_secs(600),
        }),
        ..ServeConfig::default()
    });
    let prom = arg_value("--prom-addr").map(|addr| {
        let p = PromServer::bind_with_probes(&addr, srv.probes())
            .unwrap_or_else(|e| fail(&format!("cannot bind prometheus endpoint {addr}: {e}")));
        eprintln!(
            "[chaos-serve-smoke] prometheus endpoint at http://{}",
            p.local_addr()
        );
        p
    });
    guard("storm/breaker", &run_load(&srv, &wl, &load));
    let stats = srv.stats();
    if stats.breaker.opens == 0 || stats.breaker_state != Some(BreakerState::Open) {
        fail("a total storm must trip the breaker");
    }
    if stats.breaker.shorted_slots == 0 {
        fail("an open breaker must short slots");
    }
    if stats.retries == 0 {
        fail("first-tick transient timeouts must be retried");
    }
    if let Some(prom) = &prom {
        // Satellite probes against the live (storming) server: still
        // healthy — the drainer heartbeat is fresh — but not ready.
        let (code, body) = prom
            .get("/healthz")
            .unwrap_or_else(|e| fail(&format!("healthz request failed: {e}")));
        if code != 200 {
            fail(&format!(
                "/healthz under storm must be 200, got {code} ({body})"
            ));
        }
        let (code, body) = prom
            .get("/readyz")
            .unwrap_or_else(|e| fail(&format!("readyz request failed: {e}")));
        if code != 503 || !body.contains("breaker") {
            fail(&format!(
                "/readyz with the breaker open must be 503 naming the breaker, \
                 got {code} ({body})"
            ));
        }
        let scrape = prom
            .scrape()
            .unwrap_or_else(|e| fail(&format!("self-scrape failed: {e}")));
        if cardbench_obs::enabled() && !scrape.contains("cardbench_serve_breaker_state") {
            fail("scrape lacks cardbench_serve_breaker_state");
        }
        eprintln!(
            "[chaos-serve-smoke] probes OK (healthz 200, readyz 503, scrape {} bytes)",
            scrape.len()
        );
    }
    drop(prom);
    drop(srv);

    // Phase 2: chaos-slowed drain ticks against a per-request deadline;
    // slots expire in the queue and fast-fail typed.
    let srv = server(ServeConfig {
        max_sessions: sessions.max(1),
        chaos: Some(ChaosServeConfig {
            seed: 19,
            slow_rate: 1.0,
            slow_stall: Duration::from_millis(20),
            ..ChaosServeConfig::default()
        }),
        breaker: None,
        max_retries: 0,
        ..ServeConfig::default()
    });
    guard(
        "slow/deadline",
        &run_load(
            &srv,
            &wl,
            &LoadConfig {
                deadline: Some(Duration::from_millis(4)),
                ..load.clone()
            },
        ),
    );
    if srv.stats().deadline_expired_slots == 0 {
        fail("slow ticks against a tight deadline must expire slots in the queue");
    }
    drop(srv);

    // Phase 3: the chaos injector kills the drainer (bounded budget);
    // the watchdog replaces it every time and serving ends clean.
    let srv = server(ServeConfig {
        max_sessions: sessions.max(1),
        chaos: Some(ChaosServeConfig {
            seed: 23,
            panic_rate: 0.5,
            max_panics: 2,
            ..ChaosServeConfig::default()
        }),
        watchdog_interval: Duration::from_millis(5),
        ..ServeConfig::default()
    });
    guard("drainer-panics", &run_load(&srv, &wl, &load));
    let stats = srv.stats();
    if stats.chaos_panics == 0 {
        fail("the panic phase must actually kill the drainer");
    }
    if stats.watchdog_restarts < u64::from(stats.chaos_panics) {
        fail(&format!(
            "every drainer death needs a watchdog restart: {} panics, {} restarts",
            stats.chaos_panics, stats.watchdog_restarts
        ));
    }
    // Panic budget spent: a final session must plan cleanly.
    let mut session = srv
        .session()
        .unwrap_or_else(|e| fail(&format!("post-chaos admission failed: {e}")));
    let planned = session
        .plan(&wl.queries[0])
        .unwrap_or_else(|e| fail(&format!("post-chaos plan failed: {e}")));
    if !planned.est_failures.is_empty() || planned.plan.is_err() {
        fail("serving must recover to clean answers once the panic budget is spent");
    }
    eprintln!(
        "[chaos-serve-smoke] watchdog restarts: {}, injected panics: {}",
        stats.watchdog_restarts, stats.chaos_panics
    );
    println!("chaos serve smoke OK");
}

/// First value of `--flag v` or `--flag=v` in the process arguments.
fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}
