//! Cost-model ↔ executor alignment check: measures the wall time of
//! every join algorithm and scan method across input sizes and reports
//! the rank correlation with the cost model's predictions. A healthy
//! engine keeps this high — it is the assumption behind the paper's use
//! of plan cost (PPC) as a proxy for execution time in P-Error.

use std::time::Instant;

use cardbench_engine::{execute, CostModel, Database, JoinAlgo, PhysicalPlan, ScanMethod};
use cardbench_metrics::spearman;
use cardbench_query::{BoundQuery, JoinEdge, JoinQuery, TableMask};
use cardbench_storage::{Catalog, Column, ColumnDef, ColumnKind, Table, TableSchema};

fn db_with(rows_a: usize, rows_b: usize, keys: i64) -> Database {
    let mut cat = Catalog::new();
    for (name, rows) in [("a", rows_a), ("b", rows_b)] {
        cat.add_table(
            Table::from_columns(
                TableSchema::new(
                    name,
                    vec![
                        ColumnDef::new("k", ColumnKind::ForeignKey),
                        ColumnDef::new("v", ColumnKind::Numeric),
                    ],
                ),
                vec![
                    Column::from_values((0..rows as i64).map(|i| i % keys).collect()),
                    Column::from_values((0..rows as i64).collect()),
                ],
            )
            .unwrap(),
        );
    }
    Database::new(cat)
}

fn main() {
    let _trace = cardbench_bench::init_tracing();
    let cm = CostModel::default();
    let mut model = Vec::new();
    let mut wall = Vec::new();
    println!(
        "{:<18} {:>8} {:>8} {:>10} {:>12} {:>12}",
        "operator", "left", "right", "out", "model cost", "wall"
    );
    for algo in [JoinAlgo::Hash, JoinAlgo::Merge, JoinAlgo::IndexNestedLoop] {
        for (ra, rb) in [(2_000, 2_000), (20_000, 5_000), (80_000, 80_000)] {
            let keys = (rb / 4).max(1) as i64;
            let db = db_with(ra, rb, keys);
            let q = JoinQuery {
                tables: vec!["a".into(), "b".into()],
                joins: vec![JoinEdge::new(0, "k", 1, "k")],
                predicates: vec![],
            };
            let bound = BoundQuery::bind(&q, db.catalog()).unwrap();
            let plan = PhysicalPlan::Join {
                algo,
                left: Box::new(PhysicalPlan::Scan {
                    table_pos: 0,
                    method: ScanMethod::Seq,
                    mask: TableMask::single(0),
                    est_rows: ra as f64,
                }),
                right: Box::new(PhysicalPlan::Scan {
                    table_pos: 1,
                    method: ScanMethod::Seq,
                    mask: TableMask::single(1),
                    est_rows: rb as f64,
                }),
                edge: 0,
                mask: TableMask::full(2),
                est_rows: 0.0,
            };
            let (out, _) = execute(&plan, &bound, &db); // warm
            let t0 = Instant::now();
            execute(&plan, &bound, &db);
            let dt = t0.elapsed().as_secs_f64();
            let c = cm.join_cost(algo, ra as f64, rb as f64, out as f64)
                + cm.scan_cost(ScanMethod::Seq, ra as f64, ra as f64)
                + cm.scan_cost(ScanMethod::Seq, rb as f64, rb as f64);
            println!(
                "{:<18} {ra:>8} {rb:>8} {out:>10} {c:>12.1} {:>11.3}ms",
                format!("{algo:?}"),
                dt * 1e3
            );
            model.push(c);
            wall.push(dt);
        }
    }
    println!(
        "\nSpearman(model cost, wall time) over {} operator points: {:.3}",
        model.len(),
        spearman(&model, &wall)
    );
}
