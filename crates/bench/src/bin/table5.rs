//! Regenerates paper Table 5: OLTP/OLAP split of execution and planning
//! time on STATS-CEB.

use cardbench_bench::{config_from_env, run_full};
use cardbench_harness::report::table5;

fn main() {
    let _trace = cardbench_bench::init_tracing();
    let r = run_full(config_from_env());
    print!("{}", table5(&r.stats_runs));
}
