//! Validates a `--trace` profile pair: the Chrome `trace_event` JSON and
//! its Prometheus sidecar (`<trace>.prom`).
//!
//! Usage:
//!
//! ```text
//! validate_trace <trace.json> [--require-span NAME]... [--require-family NAME]...
//! ```
//!
//! Structural checks (always on):
//! - the trace parses as JSON with a `traceEvents` array and at least
//!   one complete (`"ph": "X"`) event;
//! - every complete event carries `name`, `cat`, finite `ts`/`dur`, and
//!   a `tid`;
//! - the span hierarchy holds: every `execute` span is time-contained in
//!   a `workload` span on the same thread, every `estimate` and
//!   `topology` span (a shared-topology build on a cache miss) in a
//!   `plan` span when that thread planned anything, every `session` span
//!   in a `run` span, and (when a `run` span exists on that thread)
//!   every `workload` span in a `run` span;
//! - the sidecar parses line-wise: every series line belongs to a family
//!   announced by a `# TYPE` line.
//!
//! `--require-span` / `--require-family` add existence checks on top, so
//! CI can insist on the exact instrumentation a given binary must emit.
//! Exits non-zero with a message on the first violation.

use std::process::exit;

use cardbench_support::json::Json;

struct Span {
    name: String,
    tid: u64,
    start: f64,
    end: f64,
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_path = None;
    let mut required_spans: Vec<String> = Vec::new();
    let mut required_families: Vec<String> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--require-span" => {
                i += 1;
                required_spans.extend(argv.get(i).cloned());
            }
            "--require-family" => {
                i += 1;
                required_families.extend(argv.get(i).cloned());
            }
            a if !a.starts_with("--") => trace_path = Some(a.to_string()),
            _ => {}
        }
        i += 1;
    }
    let Some(trace_path) = trace_path else {
        eprintln!(
            "usage: validate_trace <trace.json> [--require-span N]... [--require-family N]..."
        );
        exit(2);
    };

    let spans = check_trace(&trace_path, &required_spans).unwrap_or_else(|msg| {
        eprintln!("[validate-trace] FAIL ({trace_path}): {msg}");
        exit(1);
    });
    let prom_path = format!("{trace_path}.prom");
    let families = check_prometheus(&prom_path, &required_families).unwrap_or_else(|msg| {
        eprintln!("[validate-trace] FAIL ({prom_path}): {msg}");
        exit(1);
    });
    println!("trace OK: {spans} spans, {families} metric families");
}

/// Parses and validates the Chrome trace; returns the span count.
fn check_trace(path: &str, required: &[String]) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    let v = Json::parse(&text).map_err(|e| format!("JSON parse: {e}"))?;
    let events = v
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("missing `traceEvents` array")?;

    let mut spans: Vec<Span> = Vec::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or_default();
        if ph != "X" {
            continue;
        }
        let field = |k: &str| {
            ev.get(k)
                .and_then(Json::as_f64)
                .filter(|n| n.is_finite() && *n >= 0.0)
                .ok_or(format!("complete event without finite `{k}`"))
        };
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or("complete event without `name`")?;
        ev.get("cat")
            .and_then(Json::as_str)
            .ok_or("complete event without `cat`")?;
        let ts = field("ts")?;
        let dur = field("dur")?;
        spans.push(Span {
            name: name.to_string(),
            tid: field("tid")? as u64,
            start: ts,
            end: ts + dur,
        });
    }
    if spans.is_empty() {
        return Err("no complete (\"X\") events — was tracing enabled?".into());
    }

    for want in required {
        if !spans.iter().any(|s| &s.name == want) {
            return Err(format!("required span `{want}` missing"));
        }
    }

    // A child must sit inside a parent of the expected name on the same
    // thread. Planning fans out across threads, so the rule is per-tid:
    // `estimate` happens inside `plan` on the worker that planned it,
    // `execute` inside `workload` on the coordinating thread.
    let contained = |child: &Span, parent_name: &str| {
        spans.iter().any(|p| {
            p.name == parent_name
                && p.tid == child.tid
                && p.start <= child.start
                && child.end <= p.end
        })
    };
    let tid_has = |name: &str, tid: u64| spans.iter().any(|p| p.name == name && p.tid == tid);
    for child in &spans {
        let parents: &[&str] = match child.name.as_str() {
            "execute" => &["workload"],
            // Estimates normally run on the thread that planned the
            // query, inside its `plan` span — but the serve crate's
            // coalescer drains cross-session batches on a dedicated
            // thread that never plans, so the rule is guarded like
            // `topology`'s.
            "estimate" if tid_has("plan", child.tid) => &["plan"],
            // Topology builds are memoized: a miss inside planning emits
            // the span under `plan`; a serve session's budget gate counts
            // the sub-plan space (a possible cold miss) before its plan
            // span opens, so inside a session the `session` span is the
            // containing parent. A thread that never planned (tests, case
            // studies) may build one bare — hence the guard.
            "topology" if tid_has("session", child.tid) => &["plan", "session"],
            "topology" if tid_has("plan", child.tid) => &["plan"],
            // Feedback observation runs after execution: inside the
            // adaptive runner's `workload` span, or inside a serve
            // session's `session` span (sessions never open `workload`).
            "feedback" if tid_has("session", child.tid) => &["session"],
            "feedback" if tid_has("workload", child.tid) => &["workload"],
            "workload" if tid_has("run", child.tid) => &["run"],
            // A serve session always opens its own per-thread `run` span,
            // so the rule is unconditional.
            "session" => &["run"],
            _ => continue,
        };
        if !parents.iter().any(|p| contained(child, p)) {
            return Err(format!(
                "`{}` span at ts={} (tid {}) not contained in any {} span",
                child.name,
                child.start,
                child.tid,
                parents
                    .iter()
                    .map(|p| format!("`{p}`"))
                    .collect::<Vec<_>>()
                    .join("/"),
            ));
        }
    }
    Ok(spans.len())
}

/// Line-wise validation of the Prometheus sidecar; returns the family
/// count.
fn check_prometheus(path: &str, required: &[String]) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    let mut families: Vec<String> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let fam = parts
                .next()
                .ok_or(format!("line {lineno}: bare `# TYPE`"))?;
            match parts.next() {
                Some("counter" | "gauge" | "histogram") => {}
                other => return Err(format!("line {lineno}: bad metric type {other:?}")),
            }
            families.push(fam.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // A series line: `name{labels} value` or `name value`; its name
        // (modulo histogram suffixes) must match an announced family.
        let name = line
            .split(['{', ' '])
            .next()
            .ok_or(format!("line {lineno}: unparseable series"))?;
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        if !families.iter().any(|f| f == base || f == name) {
            return Err(format!(
                "line {lineno}: series `{name}` has no preceding `# TYPE` line"
            ));
        }
        let value = line
            .rsplit(' ')
            .next()
            .ok_or(format!("line {lineno}: missing value"))?;
        value
            .parse::<f64>()
            .map_err(|_| format!("line {lineno}: non-numeric value `{value}`"))?;
    }
    for want in required {
        if !families.iter().any(|f| f == want) {
            return Err(format!("required metric family `{want}` missing"));
        }
    }
    Ok(families.len())
}
