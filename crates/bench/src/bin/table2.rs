//! Regenerates paper Table 2: workload statistics (JOB-LIGHT vs
//! STATS-CEB).

use cardbench_harness::report::table2;
use cardbench_harness::Bench;

fn main() {
    let _trace = cardbench_bench::init_tracing();
    let bench = Bench::build(cardbench_bench::config_from_env());
    print!(
        "{}",
        table2(
            &bench.imdb_db,
            &bench.imdb_wl,
            &bench.stats_db,
            &bench.stats_wl
        )
    );
}
