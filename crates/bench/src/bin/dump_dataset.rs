//! Exports the synthetic benchmark to plain files: one CSV per table of
//! both datasets and one `.sql` file per workload, under `./cardbench_export/`.
//! Useful for loading the benchmark into an external DBMS.

use std::fmt::Write as _;
use std::path::PathBuf;

use cardbench_harness::Bench;
use cardbench_query::sql::to_sql;
use cardbench_storage::csv::write_table;

fn main() -> std::io::Result<()> {
    let _trace = cardbench_bench::init_tracing();
    let bench = Bench::build(cardbench_bench::config_from_env());
    let root = PathBuf::from("cardbench_export");
    for (dir, db, wl) in [
        ("stats", &bench.stats_db, &bench.stats_wl),
        ("imdb", &bench.imdb_db, &bench.imdb_wl),
    ] {
        let d = root.join(dir);
        std::fs::create_dir_all(&d)?;
        for table in db.catalog().tables() {
            let path = d.join(format!("{}.csv", table.name()));
            write_table(table, &path).map_err(std::io::Error::other)?;
            println!("wrote {} ({} rows)", path.display(), table.row_count());
        }
        let mut sql = String::new();
        for wq in &wl.queries {
            writeln!(
                sql,
                "-- Q{} (template {}, true card {})",
                wq.id, wq.template_id, wq.true_card
            )
            .unwrap();
            writeln!(sql, "{}", to_sql(&wq.query)).unwrap();
        }
        let path = d.join(format!("{}.sql", wl.name.to_lowercase()));
        std::fs::write(&path, sql)?;
        println!("wrote {} ({} queries)", path.display(), wl.queries.len());
    }
    Ok(())
}
