//! Regenerates paper Table 1: dataset statistics (IMDB vs STATS).

use cardbench_datagen::{dataset_profile, imdb_catalog, stats_catalog};
use cardbench_harness::report::table1;

fn main() {
    let _trace = cardbench_bench::init_tracing();
    let cfg = cardbench_bench::config_from_env();
    let imdb = dataset_profile("IMDB", &imdb_catalog(&cfg.imdb));
    let stats = dataset_profile("STATS", &stats_catalog(&cfg.stats));
    print!("{}", table1(&imdb, &stats));
}
