//! Update-latency scaling: how each updatable estimator's refresh cost
//! grows with the insert batch size (extends paper Table 6 with the
//! batch-size axis that matters for OLTP deployments).

use std::time::Instant;

use cardbench_datagen::stats::{temporal_split, DAYS_MAX};
use cardbench_datagen::stats_catalog;
use cardbench_engine::Database;
use cardbench_estimators::lw::TrainingSet;
use cardbench_estimators::EstimatorKind;
use cardbench_harness::build_estimator;
use cardbench_harness::update_exp::UPDATABLE;
use cardbench_storage::TableId;

fn main() {
    let _trace = cardbench_bench::init_tracing();
    let cfg = cardbench_bench::config_from_env();
    let settings = &cfg.settings;
    let empty = TrainingSet::default();
    // Include one query-driven method to quantify O9: its "update" must
    // re-execute the whole training workload.
    let bench = cardbench_harness::Bench::build(cfg.clone());
    let methods: Vec<EstimatorKind> = UPDATABLE.into_iter().chain([EstimatorKind::Mscn]).collect();
    println!(
        "{:<14} {:>10} {:>12} {:>12}",
        "method", "batch rows", "update", "per krow"
    );
    // Cut at increasing dates: bigger cutoff ⇒ bigger stale part, smaller
    // batch; sweep the insert batch from ~10% to ~60% of the data.
    for cutoff_frac in [0.9, 0.7, 0.4] {
        let cutoff = (DAYS_MAX as f64 * cutoff_frac) as i64;
        let full = stats_catalog(&cfg.stats);
        let (stale, inserts) = temporal_split(&full, cutoff);
        let batch: usize = inserts.iter().map(|t| t.row_count()).sum();
        for &kind in &methods {
            let train = if kind == EstimatorKind::Mscn {
                &bench.stats_train
            } else {
                &empty
            };
            let stale_db = Database::new(stale.clone());
            let mut built = build_estimator(kind, &stale_db, train, settings);
            let mut db = stale_db;
            for (t, d) in inserts.iter().enumerate() {
                db.catalog_mut()
                    .table_mut(TableId(t))
                    .append_rows(d)
                    .expect("aligned schemas");
            }
            db.refresh();
            let t0 = Instant::now();
            built.est.apply_inserts(&db, &inserts);
            let dt = t0.elapsed();
            println!(
                "{:<14} {batch:>10} {:>12.3?} {:>12.3?}",
                kind.name(),
                dt,
                dt / (batch as u32 / 1000).max(1)
            );
        }
        println!();
    }
}
