//! Checks the paper's observations (O1-O14 shape assertions) against a
//! results file produced by `all_tables` (`cardbench_results.json`), or
//! runs the full evaluation first when the file is absent.

use cardbench_harness::{check_observations, render_checks, RunResults};

fn main() {
    let _trace = cardbench_bench::init_tracing();
    let path = std::path::Path::new("cardbench_results.json");
    let results = if path.exists() {
        let text = std::fs::read_to_string(path).expect("readable results file");
        RunResults::from_json(&text).expect("valid results JSON")
    } else {
        eprintln!(
            "[observations] {} not found; running the full evaluation",
            path.display()
        );
        let r = cardbench_bench::run_full(cardbench_bench::config_from_env());
        RunResults::collect(&r.imdb_runs, &r.stats_runs)
    };
    let checks = check_observations(&results);
    print!("{}", render_checks(&checks));
    if checks.iter().any(|c| !c.pass) {
        std::process::exit(1);
    }
}
