//! A small JSON value type with parser and pretty-printer (the
//! `serde_json` role for the results schema and bench summaries).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as f64, like JavaScript).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. Keys are kept sorted for stable output.
    Object(BTreeMap<String, Json>),
}

/// A parse error with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view of a numeric value.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_f64().map(|f| f as usize)
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Parses a JSON document.
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Pretty-prints with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Single-line form with no whitespace (one JSONL record per call).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => write_number(out, *n),
            Json::String(s) => write_string(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => write_number(out, *n),
            Json::String(s) => write_string(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the interoperable stand-in.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // Shortest roundtrip form.
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object_value(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object_value(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are replaced; the printer never
                            // emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one whole UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let doc = Json::object([
            ("name", Json::String("q-error \"test\"".into())),
            (
                "values",
                Json::Array(vec![Json::Number(1.5), Json::Number(2.0)]),
            ),
            ("count", Json::Number(3.0)),
            ("ok", Json::Bool(true)),
            ("missing", Json::Null),
        ]);
        let text = doc.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn parses_standard_forms() {
        let v = Json::parse(r#"{"a": [1, -2.5, 1e3], "b": {"c": "x\ny"}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(1000.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Number(42.0).pretty(), "42");
        assert_eq!(Json::Number(0.5).pretty(), "0.5");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
    }

    #[test]
    fn compact_is_single_line_and_roundtrips() {
        let doc = Json::object([
            ("a", Json::Array(vec![Json::Number(1.0), Json::Null])),
            ("b", Json::String("x y".into())),
            ("c", Json::Object(BTreeMap::new())),
        ]);
        let line = doc.compact();
        assert!(!line.contains('\n'));
        assert_eq!(line, r#"{"a":[1,null],"b":"x y","c":{}}"#);
        assert_eq!(Json::parse(&line).unwrap(), doc);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Array(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Object(BTreeMap::new()));
    }
}
