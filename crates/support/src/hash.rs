//! A minimal FNV-1a hasher (the `fxhash`/`fnv` role) for hot in-process
//! hash maps keyed by small structured values, where the DoS-resistant
//! default SipHash costs more than the lookup's payload work. Not for
//! maps keyed by untrusted external input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a streaming hasher with a one-multiply fast path for integer
/// writes (the common case for derived `Hash` on index/id fields).
#[derive(Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(OFFSET)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(PRIME);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` for [`FnvHasher`].
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// `HashMap` using [`FnvHasher`]; construct with `FnvHashMap::default()`.
pub type FnvHashMap<K, V> = HashMap<K, V, FnvBuildHasher>;

/// `HashSet` using [`FnvHasher`]; construct with `FnvHashSet::default()`.
pub type FnvHashSet<T> = HashSet<T, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FnvHashMap<(usize, Vec<i64>), u32> = FnvHashMap::default();
        m.insert((1, vec![2, 3]), 7);
        m.insert((1, vec![2, 4]), 8);
        assert_eq!(m.get(&(1, vec![2, 3])), Some(&7));
        assert_eq!(m.get(&(1, vec![2, 4])), Some(&8));
        assert_eq!(m.get(&(2, vec![2, 3])), None);
    }

    #[test]
    fn distinct_integers_hash_distinctly() {
        let mut s: FnvHashSet<u64> = FnvHashSet::default();
        for v in 0..1000u64 {
            s.insert(v);
        }
        assert_eq!(s.len(), 1000);
    }
}
