//! Scoped-thread data parallelism (the `rayon` role, dependency-free).
//!
//! [`map`] fans a slice out over worker threads with dynamic (atomic
//! counter) scheduling and returns results in input order, so callers
//! stay deterministic regardless of thread count or interleaving.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variables consulted for the default thread count, in
/// priority order. `RAYON_NUM_THREADS` is honored for muscle-memory
/// compatibility with rayon-based harnesses.
pub const THREAD_ENV_VARS: [&str; 2] = ["CARDBENCH_THREADS", "RAYON_NUM_THREADS"];

/// Number of worker threads to use when the caller does not pin one:
/// the first set env var from [`THREAD_ENV_VARS`], else the machine's
/// available parallelism.
pub fn max_threads() -> usize {
    for var in THREAD_ENV_VARS {
        if let Ok(s) = std::env::var(var) {
            if let Ok(n) = s.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Resolves a `--threads`-style knob: `0` means "auto" (env var or all
/// cores, per [`max_threads`]), anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        max_threads()
    } else {
        requested
    }
}

/// Applies `f` to every item of `items` using up to `threads` worker
/// threads, returning the results in input order.
///
/// Scheduling is dynamic: workers pull the next unclaimed index from an
/// atomic counter, so skewed per-item costs (some queries have far more
/// sub-plans than others) still balance. With `threads <= 1` (or one
/// item) this degrades to a plain sequential loop with zero overhead.
pub fn map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Batch each worker's results locally; one lock per worker.
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                collected.lock().unwrap().extend(local);
            });
        }
    });
    let mut indexed = collected.into_inner().unwrap();
    indexed.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..103).collect();
        let out = map(&items, 8, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..103).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_matches_parallel() {
        let items: Vec<u64> = (0..57).collect();
        let seq = map(&items, 1, |_, &x| x * x + 1);
        let par = map(&items, 6, |_, &x| x * x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(map(&[7u32], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn resolve_threads_semantics() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        let items: Vec<usize> = (0..64).collect();
        let ids = Mutex::new(HashSet::new());
        map(&items, 4, |_, _| {
            ids.lock().unwrap().insert(std::thread::current().id());
            // Give siblings a chance to claim work.
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        assert!(ids.lock().unwrap().len() > 1);
    }
}
