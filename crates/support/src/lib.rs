//! Dependency-free support library for the cardbench workspace.
//!
//! The build environment is fully offline, so everything that would
//! normally come from crates.io lives here instead, behind APIs that are
//! drop-in compatible with the subset the workspace uses:
//!
//! - [`rand`]: a seeded xoshiro256++ generator with the `rand`-crate call
//!   surface (`StdRng::seed_from_u64`, `gen_range`, `gen`, `gen_bool`).
//! - [`par`]: scoped-thread data parallelism (the `rayon` role): an
//!   order-preserving indexed parallel map plus thread-count resolution
//!   from `--threads`-style knobs and `RAYON_NUM_THREADS`.
//! - [`json`]: a small JSON value type with parser and pretty-printer
//!   (the `serde_json` role for the results schema).
//! - [`proptest`]: a property-testing harness compatible with the
//!   `proptest!` macro subset used by the workspace's tests.
//! - [`criterion`]: a micro-benchmark harness compatible with the
//!   `criterion_group!`/`criterion_main!` subset used under `benches/`.
//! - [`hash`]: an FNV-1a hasher (the `fxhash` role) for hot hash maps
//!   keyed by small trusted values.

pub mod criterion;
pub mod hash;
pub mod json;
pub mod par;
pub mod proptest;
pub mod rand;
