//! A property-testing harness compatible with the `proptest!` macro
//! subset used across the workspace's tests.
//!
//! Each generated test runs `ProptestConfig::cases` iterations with a
//! deterministic per-test seed (hashed from the test name), drawing every
//! argument from its [`Strategy`]. Failures reproduce exactly on re-run;
//! there is no shrinking — cases are small enough to debug directly.

use crate::rand::rngs::StdRng;
use crate::rand::{Rng, SampleUniform, Standard};

/// How many random cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic seed for a named property test.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a; any stable hash works — it only decouples sibling tests.
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A value generator (the `proptest::strategy::Strategy` role).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform + Copy> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

/// The `any::<T>()` strategy: the type's standard distribution.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-domain strategy for `T`.
pub fn any<T: Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Standard> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_tuple_strategy {
    ( $($s:ident/$v:ident),+ ) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

/// Element-count specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

/// Collection strategies (the `proptest::collection` role).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with element strategy `elem` and a size in
    /// `size` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.size.min + 1 >= self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..self.size.max)
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Option strategies (the `proptest::option` role).
pub mod option {
    use super::*;

    /// `Some` three times out of four (proptest's default weighting),
    /// `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The result of [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_range(0..4u32) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use super::{any, Just, ProptestConfig, Strategy};
    /// The `prop::collection::vec` / `prop::option::of` path root.
    pub use crate::proptest as prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests: a block of `#[test] fn name(arg in strategy,
/// ...) { body }` items, optionally headed by
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_cases! { ($crate::proptest::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_cases {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::rand::SeedableRng as _;
                let config: $crate::proptest::ProptestConfig = $cfg;
                let mut rng = $crate::rand::rngs::StdRng::seed_from_u64(
                    $crate::proptest::seed_for(stringify!($name)),
                );
                for __case in 0..config.cases {
                    let ( $($pat,)* ) = (
                        $( $crate::proptest::Strategy::generate(&($strat), &mut rng), )*
                    );
                    $body
                }
            }
        )*
    };
}

/// `assert!` under the name property tests use.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under the name property tests use.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Ranges respect their bounds.
        #[test]
        fn range_bounds(x in 3i64..12, y in 0.0f64..1.0) {
            prop_assert!((3..12).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        /// Vec strategies respect size ranges; options mix variants.
        #[test]
        fn vec_and_option(
            v in prop::collection::vec(0i64..5, 1..20),
            w in prop::collection::vec(prop::option::of(0i64..5), 8),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert_eq!(w.len(), 8);
            prop_assert!(v.iter().all(|&x| (0..5).contains(&x)));
        }

        /// Tuple + prop_map composition works.
        #[test]
        fn mapped_tuples(pair in (0usize..4, 1usize..5).prop_map(|(a, b)| (a, a + b))) {
            prop_assert!(pair.1 > pair.0);
        }
    }

    proptest! {
        /// Default config applies when no inner attribute is given.
        #[test]
        fn default_config(_x in 0..1i32) {
            // Body runs; nothing to assert beyond not panicking.
        }
    }
}
