//! A micro-benchmark harness compatible with the `criterion_group!` /
//! `criterion_main!` subset used by the workspace's `benches/`.
//!
//! Each `bench_function` call runs a short warm-up, then `sample_size`
//! timed batches, and prints min/median/mean per iteration. Results are
//! also collected on the [`Criterion`] value so custom bench mains can
//! post-process them (e.g. emit a JSON summary).

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One recorded measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/function` label.
    pub id: String,
    /// Median time per iteration.
    pub median: Duration,
    /// Mean time per iteration.
    pub mean: Duration,
    /// Minimum time per iteration.
    pub min: Duration,
    /// Timed samples taken.
    pub samples: usize,
}

/// The harness entry point handed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    /// All measurements recorded so far.
    pub measurements: Vec<Measurement>,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let m = run_bench(&id.to_string(), 20, &mut f);
        self.measurements.push(m);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let m = run_bench(&label, self.sample_size, &mut f);
        self.parent.measurements.push(m);
        self
    }

    /// Benchmarks `f` with a borrowed input under `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing happens per-benchmark; nothing to do).
    pub fn finish(self) {}
}

/// A benchmark label, optionally parameterized.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter as the label.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures handed to it by the function under benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` `iters` times, recording total elapsed time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = t0.elapsed();
    }
}

/// Picks an iteration count so one sample takes roughly 10ms, then runs
/// `sample_size` timed samples.
fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) -> Measurement {
    // Calibration: grow iters until one batch takes >= 2ms (cap at 2^20).
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= (1 << 20) {
            break;
        }
        iters *= 2;
    }
    let mut per_iter: Vec<Duration> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed / iters as u32
        })
        .collect();
    per_iter.sort_unstable();
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
    let min = per_iter[0];
    println!("bench {id:<44} median {median:>12.3?}  mean {mean:>12.3?}  min {min:>12.3?}  ({sample_size} samples x {iters} iters)");
    Measurement {
        id: id.to_string(),
        median,
        mean,
        min,
        samples: sample_size,
    }
}

/// Declares a bench group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::criterion::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_measurements() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        c.bench_function("top", |b| b.iter(|| black_box(3)));
        assert_eq!(c.measurements.len(), 3);
        assert_eq!(c.measurements[0].id, "g/noop");
        assert_eq!(c.measurements[1].id, "g/param/7");
        assert_eq!(c.measurements[2].id, "top");
        assert!(c.measurements.iter().all(|m| m.samples >= 3));
    }
}
