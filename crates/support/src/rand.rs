//! Seeded pseudo-random generation with the `rand`-crate call surface.
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — fast,
//! statistically solid for benchmarking workloads, and fully
//! deterministic per seed, which the harness's determinism tests rely on.

/// Generator implementations (mirrors `rand::rngs`).
pub mod rngs {
    /// A seedable xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Construction from integer seeds (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 expansion of the seed into the xoshiro state; never
        // yields the all-zero state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    #[inline]
    fn next_u64_impl(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Value generation (mirrors `rand::Rng`).
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `range` (half-open `a..b` or inclusive `a..=b`,
    /// like `rand::Rng::gen_range`). Panics on an empty range.
    fn gen_range<T: SampleUniform, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A value of the type's standard distribution (`[0,1)` for floats,
    /// full width for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

/// Types samplable uniformly from a `Range` (the `rand` `SampleUniform`
/// role).
pub trait SampleUniform: Sized {
    /// Uniform sample from `[range.start, range.end)`.
    fn sample_range<R: Rng>(rng: &mut R, range: std::ops::Range<Self>) -> Self;

    /// Uniform sample from `[lo, hi]` (inclusive).
    fn sample_range_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Range forms accepted by [`Rng::gen_range`] (the `rand` `SampleRange`
/// role): half-open and inclusive ranges.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        T::sample_range(rng, self)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range_inclusive(rng, lo, hi)
    }
}

/// Unbiased uniform draw from `[0, n)` via Lemire-style rejection.
#[inline]
fn uniform_u64<R: Rng>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "empty range");
    // Rejection zone keeps the draw exactly uniform.
    let zone = u64::MAX - u64::MAX % n;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: Rng>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as i128 - range.start as i128) as u64;
                let off = uniform_u64(rng, span);
                (range.start as i128 + off as i128) as $t
            }

            #[inline]
            fn sample_range_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range");
                // i128 widening keeps `lo..=hi` spans (one past the
                // half-open form) exact for every integer type in use.
                let span = (hi as i128 - lo as i128 + 1) as u64;
                let off = uniform_u64(rng, span);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: Rng>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        let u: f64 = Standard::sample(rng);
        range.start + u * (range.end - range.start)
    }

    #[inline]
    fn sample_range_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
        // For floats the closed/half-open distinction is immaterial.
        assert!(lo <= hi, "empty range");
        let u: f64 = Standard::sample(rng);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_range<R: Rng>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        let u: f32 = Standard::sample(rng);
        range.start + u * (range.end - range.start)
    }

    #[inline]
    fn sample_range_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "empty range");
        let u: f32 = Standard::sample(rng);
        lo + u * (hi - lo)
    }
}

/// The standard distribution (the `rand::distributions::Standard` role).
pub trait Standard: Sized {
    /// One sample.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        // 53 top bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for i64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..12i64);
            assert!((3..12).contains(&v));
            let u = rng.gen_range(0..7u32);
            assert!(u < 7);
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_standard_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        // Mean of U[0,1) within loose bounds.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
