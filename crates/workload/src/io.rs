//! Workload persistence: the annotated `.sql` format written by the
//! export tooling, parsed back via the query crate's SQL parser.
//!
//! Format: each query is a `-- Q<id> (template <t>, true card <c>)`
//! comment followed by one `SELECT COUNT(*)` statement.

use std::path::Path;

use cardbench_query::parse_sql;

use crate::generator::{Workload, WorkloadQuery};

/// Serializes a workload to the annotated SQL text format.
pub fn workload_to_sql(wl: &Workload) -> String {
    use std::fmt::Write as _;
    // Writes to an in-memory `String` are infallible, so their results
    // are deliberately discarded instead of unwrapped.
    let mut out = String::new();
    let _ = writeln!(out, "-- workload: {}", wl.name);
    for wq in &wl.queries {
        let _ = writeln!(
            out,
            "-- Q{} (template {}, true card {})",
            wq.id, wq.template_id, wq.true_card
        );
        let _ = writeln!(out, "{}", cardbench_query::sql::to_sql(&wq.query));
    }
    out
}

/// Parses a workload back from the annotated SQL format.
pub fn workload_from_sql(text: &str) -> Result<Workload, String> {
    let mut name = String::from("workload");
    let mut queries = Vec::new();
    let mut pending: Option<(usize, usize, f64)> = None;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("-- workload:") {
            name = rest.trim().to_string();
        } else if let Some(rest) = line.strip_prefix("-- Q") {
            pending = Some(parse_annotation(rest).map_err(|e| format!("line {lineno}: {e}"))?);
        } else if !line.starts_with("--") {
            let (id, template_id, true_card) = pending
                .take()
                .ok_or_else(|| format!("line {lineno}: query without annotation: {line}"))?;
            let query = parse_sql(line).map_err(|e| format!("line {lineno}: {e}"))?;
            queries.push(WorkloadQuery {
                id,
                template_id,
                query,
                true_card,
            });
        }
    }
    let mut templates: Vec<usize> = queries.iter().map(|q| q.template_id).collect();
    templates.sort_unstable();
    templates.dedup();
    Ok(Workload {
        name,
        template_count: templates.len(),
        queries,
    })
}

/// Parses `"<id> (template <t>, true card <c>)"`.
fn parse_annotation(rest: &str) -> Result<(usize, usize, f64), String> {
    let err = || format!("bad annotation: {rest}");
    let (id, rest) = rest.split_once(' ').ok_or_else(err)?;
    let id: usize = id.trim().parse().map_err(|_| err())?;
    let inner = rest
        .trim()
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(err)?;
    let (tpart, cpart) = inner.split_once(',').ok_or_else(err)?;
    let template: usize = tpart
        .trim()
        .strip_prefix("template ")
        .ok_or_else(err)?
        .parse()
        .map_err(|_| err())?;
    let card: f64 = cpart
        .trim()
        .strip_prefix("true card ")
        .ok_or_else(err)?
        .parse()
        .map_err(|_| err())?;
    Ok((id, template, card))
}

/// Annotates an I/O error with the path it happened on — a bare
/// "No such file or directory" without the offending path is useless in
/// a batch run's log.
fn with_path(path: &Path, e: std::io::Error) -> std::io::Error {
    std::io::Error::new(e.kind(), format!("{}: {e}", path.display()))
}

/// Writes a workload file. Errors carry the path.
pub fn write_workload(wl: &Workload, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, workload_to_sql(wl)).map_err(|e| with_path(path, e))
}

/// Reads a workload file. Errors carry the path.
pub fn read_workload(path: &Path) -> std::io::Result<Workload> {
    let text = std::fs::read_to_string(path).map_err(|e| with_path(path, e))?;
    workload_from_sql(&text).map_err(|e| std::io::Error::other(format!("{}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{stats_ceb, WorkloadConfig};
    use cardbench_datagen::{stats_catalog, StatsConfig};
    use cardbench_engine::Database;

    #[test]
    fn roundtrip_through_sql_text() {
        let db = Database::new(stats_catalog(&StatsConfig::tiny(12)));
        let wl = stats_ceb(
            &db,
            &WorkloadConfig {
                templates: 8,
                queries: 10,
                max_tables: 4,
                ..WorkloadConfig::stats_ceb(12)
            },
        );
        let text = workload_to_sql(&wl);
        let back = workload_from_sql(&text).unwrap();
        assert_eq!(back.name, wl.name);
        assert_eq!(back.queries.len(), wl.queries.len());
        assert_eq!(back.template_count, wl.template_count);
        for (a, b) in back.queries.iter().zip(&wl.queries) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.true_card, b.true_card);
            assert_eq!(a.query.canonical_key(), b.query.canonical_key());
        }
    }

    #[test]
    fn file_roundtrip() {
        let db = Database::new(stats_catalog(&StatsConfig::tiny(13)));
        let wl = stats_ceb(
            &db,
            &WorkloadConfig {
                templates: 4,
                queries: 5,
                max_tables: 3,
                ..WorkloadConfig::stats_ceb(13)
            },
        );
        let dir = std::env::temp_dir().join("cardbench_wl_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wl.sql");
        write_workload(&wl, &path).unwrap();
        let back = read_workload(&path).unwrap();
        assert_eq!(back.queries.len(), 5);
    }

    #[test]
    fn io_errors_name_the_path() {
        let path = Path::new("/nonexistent-cardbench/wl.sql");
        let err = read_workload(path).unwrap_err();
        assert!(
            err.to_string().contains("/nonexistent-cardbench/wl.sql"),
            "{err}"
        );
        let db = Database::new(stats_catalog(&StatsConfig::tiny(14)));
        let wl = stats_ceb(
            &db,
            &WorkloadConfig {
                templates: 2,
                queries: 2,
                max_tables: 3,
                ..WorkloadConfig::stats_ceb(14)
            },
        );
        let err = write_workload(&wl, path).unwrap_err();
        assert!(
            err.to_string().contains("/nonexistent-cardbench/wl.sql"),
            "{err}"
        );
    }

    #[test]
    fn rejects_missing_annotation() {
        let text = "SELECT COUNT(*) FROM users;";
        let err = workload_from_sql(text).unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn parse_errors_carry_file_line() {
        let text = "-- workload: w\n-- Q1 (template 0, true card 2)\nSELECT nothing;";
        let err = workload_from_sql(text).unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
        assert!(err.contains("SQL parse error"), "{err}");
    }
}
