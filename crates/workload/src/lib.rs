//! Benchmark query workloads: join-template enumeration over a schema
//! graph and the STATS-CEB / JOB-LIGHT analog generators.
//!
//! STATS-CEB (paper §3): 146 hand-shaped queries over 70 acyclic join
//! templates spanning 2–8 tables with chain/star/mixed forms and PK-FK +
//! FK-FK joins, 1–16 filter predicates, and a wide true-cardinality
//! range. JOB-LIGHT: 70 queries over 23 star templates spanning 2–5
//! tables. Both are generated deterministically from a seed, with
//! predicates anchored at real data values and zero-result candidates
//! rejected (the paper hand-picks for real-world semantics).

// Generation and (de)serialization surface typed errors, never unwraps
// (tests may).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod generator;
pub mod io;
pub mod templates;

pub use generator::{
    job_light, stats_ceb, training_workload, Workload, WorkloadConfig, WorkloadQuery,
};
pub use io::{read_workload, workload_from_sql, workload_to_sql, write_workload};
pub use templates::{enumerate_templates, JoinTemplate};
