//! Enumeration of acyclic join templates (tree subgraphs of the schema
//! join graph, each table used at most once).

use std::collections::HashSet;

use cardbench_engine::Database;
use cardbench_query::{JoinEdge, JoinQuery};

/// One join template: a query skeleton without predicates.
#[derive(Debug, Clone)]
pub struct JoinTemplate {
    /// Distinct table names.
    pub tables: Vec<String>,
    /// Tree edges over `tables` positions.
    pub joins: Vec<JoinEdge>,
}

impl JoinTemplate {
    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Instantiates the skeleton as a query (no predicates yet).
    pub fn to_query(&self) -> JoinQuery {
        JoinQuery {
            tables: self.tables.clone(),
            joins: self.joins.clone(),
            predicates: vec![],
        }
    }

    /// Canonical identity: sorted canonical edge strings.
    fn key(&self) -> String {
        let mut edges: Vec<String> = self
            .joins
            .iter()
            .map(|e| {
                let a = format!("{}.{}", self.tables[e.left], e.left_col);
                let b = format!("{}.{}", self.tables[e.right], e.right_col);
                if a <= b {
                    format!("{a}={b}")
                } else {
                    format!("{b}={a}")
                }
            })
            .collect();
        edges.sort_unstable();
        edges.join("|")
    }
}

/// A schema edge in name form.
#[derive(Debug, Clone)]
struct SchemaEdge {
    lt: String,
    lc: String,
    rt: String,
    rc: String,
}

/// Enumerates every acyclic join template with `2..=max_tables` tables
/// (each table at most once), deduplicated by canonical edge set and
/// ordered by table count, then key.
pub fn enumerate_templates(db: &Database, max_tables: usize) -> Vec<JoinTemplate> {
    let edges: Vec<SchemaEdge> = db
        .catalog()
        .joins()
        .iter()
        .map(|j| SchemaEdge {
            lt: j.left_table.clone(),
            lc: j.left_column.clone(),
            rt: j.right_table.clone(),
            rc: j.right_column.clone(),
        })
        .collect();
    let mut seen: HashSet<String> = HashSet::new();
    let mut out: Vec<JoinTemplate> = Vec::new();
    // Grow trees from every starting edge.
    for start in 0..edges.len() {
        let e = &edges[start];
        let t = JoinTemplate {
            tables: vec![e.lt.clone(), e.rt.clone()],
            joins: vec![JoinEdge::new(0, e.lc.clone(), 1, e.rc.clone())],
        };
        grow(&edges, t, max_tables, &mut seen, &mut out);
    }
    out.sort_by(|a, b| {
        a.table_count()
            .cmp(&b.table_count())
            .then_with(|| a.key().cmp(&b.key()))
    });
    out
}

fn grow(
    edges: &[SchemaEdge],
    current: JoinTemplate,
    max_tables: usize,
    seen: &mut HashSet<String>,
    out: &mut Vec<JoinTemplate>,
) {
    if !seen.insert(current.key()) {
        return;
    }
    out.push(current.clone());
    if current.table_count() >= max_tables {
        return;
    }
    for e in edges {
        // The edge must connect one in-template table to one new table.
        let l_in = current.tables.iter().position(|t| *t == e.lt);
        let r_in = current.tables.iter().position(|t| *t == e.rt);
        let (anchor, anchor_col, new_table, new_col) = match (l_in, r_in) {
            (Some(pos), None) => (pos, &e.lc, &e.rt, &e.rc),
            (None, Some(pos)) => (pos, &e.rc, &e.lt, &e.lc),
            _ => continue,
        };
        let mut next = current.clone();
        next.tables.push(new_table.clone());
        next.joins.push(JoinEdge::new(
            anchor,
            anchor_col.clone(),
            next.tables.len() - 1,
            new_col.clone(),
        ));
        grow(edges, next, max_tables, seen, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardbench_datagen::{imdb_catalog, stats_catalog, ImdbConfig, StatsConfig};

    #[test]
    fn imdb_star_template_count() {
        // 5 satellites around title: templates = non-empty satellite
        // subsets = 2^5 - 1 = 31 (all contain title).
        let db = Database::new(imdb_catalog(&ImdbConfig::tiny(1)));
        let templates = enumerate_templates(&db, 6);
        assert_eq!(templates.len(), 31);
        for t in &templates {
            assert!(t.to_query().is_acyclic());
            assert!(t.tables.contains(&"title".to_string()));
        }
    }

    #[test]
    fn imdb_max_tables_caps_size() {
        let db = Database::new(imdb_catalog(&ImdbConfig::tiny(1)));
        let templates = enumerate_templates(&db, 3);
        assert!(templates.iter().all(|t| t.table_count() <= 3));
        // 5 two-table + C(5,2)=10 three-table.
        assert_eq!(templates.len(), 15);
    }

    #[test]
    fn stats_templates_are_rich() {
        let db = Database::new(stats_catalog(&StatsConfig::tiny(1)));
        let templates = enumerate_templates(&db, 8);
        // The cyclic 12-edge schema yields far more than 70 templates.
        assert!(templates.len() > 100, "got {}", templates.len());
        // All sizes 2..=8 are represented.
        for k in 2..=8 {
            assert!(
                templates.iter().any(|t| t.table_count() == k),
                "no template with {k} tables"
            );
        }
        // Every template is a valid tree without repeated tables.
        for t in &templates {
            let q = t.to_query();
            assert!(q.is_acyclic(), "template not a tree: {:?}", t.tables);
            let mut names = t.tables.clone();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), t.tables.len());
        }
    }

    #[test]
    fn deduplication_by_canonical_key() {
        let db = Database::new(stats_catalog(&StatsConfig::tiny(1)));
        let templates = enumerate_templates(&db, 4);
        let mut keys: Vec<String> = templates.iter().map(|t| t.key()).collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        assert_eq!(before, keys.len());
    }

    #[test]
    fn fkfk_template_exists() {
        let db = Database::new(stats_catalog(&StatsConfig::tiny(1)));
        let templates = enumerate_templates(&db, 2);
        // comments ⋈ badges on UserId is the FK-FK edge.
        assert!(templates.iter().any(|t| {
            t.tables.contains(&"comments".to_string()) && t.tables.contains(&"badges".to_string())
        }));
    }
}
