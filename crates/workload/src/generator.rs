//! Workload generation: template selection, predicate synthesis, and the
//! two benchmark workloads plus random training workloads.

use cardbench_support::rand::rngs::StdRng;
use cardbench_support::rand::{Rng, SeedableRng};

use cardbench_engine::{exact_cardinality, Database};
use cardbench_query::{JoinQuery, Predicate, Region};
use cardbench_storage::ColumnKind;

use crate::templates::{enumerate_templates, JoinTemplate};

/// One benchmark query.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// 1-based id (Q1, Q2, …).
    pub id: usize,
    /// Index of the template the query instantiates.
    pub template_id: usize,
    /// The query.
    pub query: JoinQuery,
    /// Exact result cardinality (computed at generation time).
    pub true_card: f64,
}

/// A benchmark workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name.
    pub name: String,
    /// Queries in id order.
    pub queries: Vec<WorkloadQuery>,
    /// Number of distinct templates used.
    pub template_count: usize,
}

impl Workload {
    /// Min/max joined tables across queries.
    pub fn table_count_range(&self) -> (usize, usize) {
        let counts = self.queries.iter().map(|q| q.query.table_count());
        (counts.clone().min().unwrap_or(0), counts.max().unwrap_or(0))
    }

    /// Min/max filter-predicate counts across queries.
    pub fn predicate_count_range(&self) -> (usize, usize) {
        let counts = self.queries.iter().map(|q| q.query.predicates.len());
        (counts.clone().min().unwrap_or(0), counts.max().unwrap_or(0))
    }

    /// Min/max true cardinality across queries.
    pub fn cardinality_range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for q in &self.queries {
            lo = lo.min(q.true_card);
            hi = hi.max(q.true_card);
        }
        (lo, hi)
    }

    /// True when any query uses an FK-FK (many-to-many) join.
    pub fn has_fkfk(&self, db: &Database) -> bool {
        self.queries.iter().any(|wq| {
            wq.query.joins.iter().any(|e| {
                let lt = &wq.query.tables[e.left];
                let rt = &wq.query.tables[e.right];
                db.catalog().joins().iter().any(|j| {
                    j.kind == cardbench_storage::JoinKind::FkFk
                        && ((j.left_table == *lt && j.right_table == *rt)
                            || (j.left_table == *rt && j.right_table == *lt))
                })
            })
        })
    }
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// RNG seed.
    pub seed: u64,
    /// Target number of templates.
    pub templates: usize,
    /// Target number of queries.
    pub queries: usize,
    /// Maximum tables per query.
    pub max_tables: usize,
    /// Upper bound on filter predicates per query.
    pub max_predicates: usize,
    /// Retries per query before giving up on a non-empty result.
    pub retries: usize,
    /// Upper bound on the cardinality of any sub-plan of a query.
    /// Executed plans materialize intermediates, so this bounds both
    /// memory and per-query time; it scales the paper's cardinality
    /// range down uniformly with the data.
    pub max_subplan_card: f64,
}

impl WorkloadConfig {
    /// Paper-shaped STATS-CEB configuration: 70 templates, 146 queries,
    /// 2–8 tables, up to 16 predicates.
    pub fn stats_ceb(seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            seed,
            templates: 70,
            queries: 146,
            max_tables: 8,
            max_predicates: 16,
            retries: 40,
            max_subplan_card: 1.5e7,
        }
    }

    /// Paper-shaped JOB-LIGHT configuration: 23 templates, 70 queries,
    /// 2–5 tables, up to 4 predicates.
    pub fn job_light(seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            seed,
            templates: 23,
            queries: 70,
            max_tables: 5,
            max_predicates: 4,
            retries: 24,
            max_subplan_card: 4e6,
        }
    }
}

/// Generates the STATS-CEB analog workload.
pub fn stats_ceb(db: &Database, cfg: &WorkloadConfig) -> Workload {
    build_workload(db, cfg, "STATS-CEB")
}

/// Generates the JOB-LIGHT analog workload.
pub fn job_light(db: &Database, cfg: &WorkloadConfig) -> Workload {
    build_workload(db, cfg, "JOB-LIGHT")
}

fn build_workload(db: &Database, cfg: &WorkloadConfig, name: &str) -> Workload {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let all = enumerate_templates(db, cfg.max_tables);
    assert!(!all.is_empty(), "schema has no join templates");
    // Keep only viable templates (non-empty unfiltered join), mirroring
    // the paper's hand-picking of templates with real-world semantics.
    // Large templates are allowed even when their unfiltered join is huge:
    // their queries carry predicates on every table (below).
    let viable: Vec<JoinTemplate> = all
        .into_iter()
        .filter(|t| exact_cardinality(db, &t.to_query()).unwrap_or(0.0) >= 1.0)
        .collect();
    assert!(!viable.is_empty(), "no viable join templates");
    // Over-pick: some large templates fail instantiation under the
    // sub-plan cap and are replaced from the reserve.
    let candidates = pick_templates(&viable, cfg.templates * 2, &mut rng);
    // Spread queries over templates (1–4 each, paper §3), favouring
    // mid-size joins the way STATS-CEB does.
    let mut queries = Vec::with_capacity(cfg.queries);
    let mut id = 1;
    // First pass: one query per template until `cfg.templates` distinct
    // templates are represented (replacing failures from the reserve).
    let mut picked: Vec<(usize, &JoinTemplate)> = Vec::new();
    for (template_id, template) in &candidates {
        if picked.len() >= cfg.templates || queries.len() >= cfg.queries {
            break;
        }
        if let Some((query, card)) = instantiate(db, template, cfg, &mut rng) {
            queries.push(WorkloadQuery {
                id,
                template_id: *template_id,
                query,
                true_card: card,
            });
            id += 1;
            picked.push((*template_id, template));
        }
    }
    assert!(!picked.is_empty(), "no instantiable templates");
    // Later passes: 1-3 more queries per template (paper §3: 1-4 each).
    let mut ti = 0;
    let attempt_cap = cfg.queries * 40 + picked.len() * 8;
    let mut attempts = 0;
    while queries.len() < cfg.queries {
        attempts += 1;
        assert!(
            attempts <= attempt_cap,
            "workload generation stalled: {}/{} queries",
            queries.len(),
            cfg.queries
        );
        let (template_id, template) = &picked[ti % picked.len()];
        ti += 1;
        let per = rng.gen_range(1..=3usize).min(cfg.queries - queries.len());
        for _ in 0..per {
            if let Some((query, card)) = instantiate(db, template, cfg, &mut rng) {
                queries.push(WorkloadQuery {
                    id,
                    template_id: *template_id,
                    query,
                    true_card: card,
                });
                id += 1;
            }
            if queries.len() >= cfg.queries {
                break;
            }
        }
    }
    let mut used: Vec<usize> = queries.iter().map(|q| q.template_id).collect();
    used.sort_unstable();
    used.dedup();
    Workload {
        name: name.to_string(),
        queries,
        template_count: used.len(),
    }
}

/// Picks a size-stratified template subset (covering every table count
/// available, then filling by round-robin over sizes).
fn pick_templates<'a>(
    all: &'a [JoinTemplate],
    want: usize,
    rng: &mut StdRng,
) -> Vec<(usize, &'a JoinTemplate)> {
    let max_size = all.iter().map(JoinTemplate::table_count).max().unwrap_or(2);
    let mut by_size: Vec<Vec<usize>> = vec![Vec::new(); max_size + 1];
    for (i, t) in all.iter().enumerate() {
        by_size[t.table_count()].push(i);
    }
    for bucket in &mut by_size {
        // Deterministic shuffle.
        for i in (1..bucket.len()).rev() {
            let j = rng.gen_range(0..=i);
            bucket.swap(i, j);
        }
    }
    let mut picked = Vec::with_capacity(want);
    let mut cursor = vec![0usize; max_size + 1];
    let mut size = 2;
    while picked.len() < want {
        let bucket = &by_size[size];
        if cursor[size] < bucket.len() {
            let idx = bucket[cursor[size]];
            cursor[size] += 1;
            picked.push((idx, &all[idx]));
        }
        size += 1;
        if size > max_size {
            size = 2;
            // All buckets exhausted?
            if (2..=max_size).all(|s| cursor[s] >= by_size[s].len()) {
                break;
            }
        }
    }
    picked
}

/// Instantiates a template with data-anchored predicates, rejecting
/// empty results.
fn instantiate(
    db: &Database,
    template: &JoinTemplate,
    cfg: &WorkloadConfig,
    rng: &mut StdRng,
) -> Option<(JoinQuery, f64)> {
    // Big templates only stay under the sub-plan cap with selective
    // predicates on every table (the shape of the paper's hand-picked
    // large STATS-CEB queries).
    let cover_all = template.table_count() >= 6;
    // The biggest templates need more predicate draws to land under the
    // sub-plan cap (the paper hand-picks these).
    let retries = cfg.retries * template.table_count().saturating_sub(5).max(1);
    for _ in 0..retries {
        let mut query = template.to_query();
        let slots = filterable_slots(db, template).max(1);
        let lo = if cover_all {
            template.table_count().min(slots)
        } else {
            1
        };
        let n_preds = rng.gen_range(lo..=cfg.max_predicates.min(slots).max(lo));
        query.predicates = gen_predicates(db, template, n_preds, cover_all, rng);
        if query.predicates.is_empty() {
            continue;
        }
        let card = exact_cardinality(db, &query).unwrap_or(0.0);
        if card >= 1.0 && max_subplan_card(db, &query) <= cfg.max_subplan_card {
            return Some((query, card));
        }
    }
    // Fall back to one wide predicate over the (viable) template so
    // generation terminates; reject if even that is empty.
    let mut query = template.to_query();
    query.predicates = gen_predicates(db, template, 1, false, rng)
        .into_iter()
        .map(|mut p| {
            p.region = Region::between(i64::MIN, i64::MAX);
            p
        })
        .collect();
    if query.predicates.is_empty() {
        return None;
    }
    let card = exact_cardinality(db, &query).unwrap_or(0.0);
    (card >= 1.0 && max_subplan_card(db, &query) <= cfg.max_subplan_card).then_some((query, card))
}

/// Largest true cardinality over the query's connected sub-plans — the
/// worst intermediate any join order can materialize.
fn max_subplan_card(db: &Database, query: &JoinQuery) -> f64 {
    use cardbench_query::{connected_subsets, SubPlanQuery};
    connected_subsets(query)
        .into_iter()
        .map(|mask| {
            let sp = SubPlanQuery::project(query, mask);
            exact_cardinality(db, &sp.query).unwrap_or(f64::INFINITY)
        })
        .fold(0.0, f64::max)
}

fn filterable_slots(db: &Database, template: &JoinTemplate) -> usize {
    template
        .tables
        .iter()
        .map(|t| {
            db.catalog()
                .table_by_name(t)
                .map_or(0, |tab| tab.schema().filterable_columns().len())
        })
        .sum()
}

/// Draws `n` predicates anchored at real row values. With `cover_all`,
/// slot selection first places one predicate on every table.
fn gen_predicates(
    db: &Database,
    template: &JoinTemplate,
    n: usize,
    cover_all: bool,
    rng: &mut StdRng,
) -> Vec<Predicate> {
    // All (table position, column index, kind) filter slots.
    let mut slots = Vec::new();
    for (pos, tname) in template.tables.iter().enumerate() {
        let Ok(table) = db.catalog().table_by_name(tname) else {
            continue;
        };
        for c in table.schema().filterable_columns() {
            slots.push((pos, c, table.schema().columns[c].kind));
        }
    }
    if slots.is_empty() {
        return Vec::new();
    }
    // Sample distinct slots.
    for i in (1..slots.len()).rev() {
        let j = rng.gen_range(0..=i);
        slots.swap(i, j);
    }
    if cover_all {
        // Stable-partition so the first slots cover distinct tables.
        let mut seen = std::collections::HashSet::new();
        slots.sort_by_key(|&(pos, _, _)| !seen.insert(pos));
    }
    slots.truncate(n);
    let mut preds = Vec::new();
    for (pos, col, kind) in slots {
        let table = db
            .catalog()
            .table_by_name(&template.tables[pos])
            .expect("table");
        let column = table.column(col);
        // Anchor at a random non-null value.
        let mut anchor = None;
        for _ in 0..16 {
            let r = rng.gen_range(0..table.row_count().max(1));
            if let Some(v) = column.get(r) {
                anchor = Some(v);
                break;
            }
        }
        let Some(v) = anchor else { continue };
        let region = match kind {
            ColumnKind::Categorical => {
                if rng.gen::<f64>() < 0.3 {
                    // IN-list of a few observed values.
                    let mut vals = vec![v];
                    for _ in 0..rng.gen_range(1..=3) {
                        let r = rng.gen_range(0..table.row_count());
                        if let Some(v2) = column.get(r) {
                            vals.push(v2);
                        }
                    }
                    Region::in_list(vals)
                } else {
                    Region::eq(v)
                }
            }
            _ => match rng.gen_range(0..4) {
                0 => Region::le(v),
                1 => Region::ge(v),
                2 => Region::eq(v),
                _ => {
                    let r = rng.gen_range(0..table.row_count());
                    let v2 = column.get(r).unwrap_or(v);
                    Region::between(v.min(v2), v.max(v2))
                }
            },
        };
        preds.push(Predicate::new(
            pos,
            table.schema().columns[col].name.clone(),
            region,
        ));
    }
    preds
}

/// Generates a random training workload for the query-driven estimators
/// (the paper auto-generates 10^5; scale via `n`). Returns `(queries,
/// true cardinalities)`.
pub fn training_workload(
    db: &Database,
    n: usize,
    max_tables: usize,
    seed: u64,
) -> (Vec<JoinQuery>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let templates = enumerate_templates(db, max_tables);
    let mut queries = Vec::with_capacity(n);
    let mut cards = Vec::with_capacity(n);
    while queries.len() < n {
        let t = &templates[rng.gen_range(0..templates.len())];
        let n_preds = rng.gen_range(1..=4usize);
        let mut q = t.to_query();
        q.predicates = gen_predicates(db, t, n_preds, false, &mut rng);
        let card = exact_cardinality(db, &q).unwrap_or(0.0);
        queries.push(q);
        cards.push(card);
    }
    (queries, cards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardbench_datagen::{imdb_catalog, stats_catalog, ImdbConfig, StatsConfig};

    fn stats_db() -> Database {
        Database::new(stats_catalog(&StatsConfig::tiny(1)))
    }

    #[test]
    fn stats_ceb_shape() {
        let db = stats_db();
        let cfg = WorkloadConfig {
            queries: 30,
            templates: 20,
            ..WorkloadConfig::stats_ceb(7)
        };
        let w = stats_ceb(&db, &cfg);
        assert_eq!(w.queries.len(), 30);
        assert!(w.template_count <= 20);
        let (lo, hi) = w.table_count_range();
        assert!(lo >= 2 && hi <= 8);
        // Every query is acyclic, connected, and non-empty.
        for q in &w.queries {
            assert!(q.query.is_acyclic());
            assert!(q.true_card >= 1.0, "Q{} empty", q.id);
            assert!(!q.query.predicates.is_empty());
        }
    }

    #[test]
    fn job_light_star_only() {
        let db = Database::new(imdb_catalog(&ImdbConfig::tiny(1)));
        let cfg = WorkloadConfig {
            queries: 20,
            templates: 10,
            ..WorkloadConfig::job_light(7)
        };
        let w = job_light(&db, &cfg);
        assert_eq!(w.queries.len(), 20);
        for q in &w.queries {
            // Star: every multi-table query contains the hub.
            if q.query.table_count() > 1 {
                assert!(q.query.tables.contains(&"title".to_string()));
            }
            assert!(q.query.table_count() <= 5);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let db = stats_db();
        let cfg = WorkloadConfig {
            queries: 10,
            templates: 8,
            ..WorkloadConfig::stats_ceb(42)
        };
        let a = stats_ceb(&db, &cfg);
        let b = stats_ceb(&db, &cfg);
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(x.query.canonical_key(), y.query.canonical_key());
            assert_eq!(x.true_card, y.true_card);
        }
    }

    #[test]
    fn stats_ceb_includes_fkfk_queries_at_scale() {
        let db = stats_db();
        let cfg = WorkloadConfig {
            queries: 60,
            templates: 40,
            ..WorkloadConfig::stats_ceb(3)
        };
        let w = stats_ceb(&db, &cfg);
        assert!(w.has_fkfk(&db));
    }

    #[test]
    fn training_workload_labels_match_truth() {
        let db = stats_db();
        let (qs, cards) = training_workload(&db, 12, 3, 5);
        assert_eq!(qs.len(), 12);
        for (q, &c) in qs.iter().zip(&cards) {
            assert_eq!(exact_cardinality(&db, q).unwrap(), c);
        }
    }

    #[test]
    fn workload_stat_helpers() {
        let db = stats_db();
        let cfg = WorkloadConfig {
            queries: 15,
            templates: 10,
            ..WorkloadConfig::stats_ceb(9)
        };
        let w = stats_ceb(&db, &cfg);
        let (plo, phi) = w.predicate_count_range();
        assert!(plo >= 1 && phi <= 16);
        let (clo, chi) = w.cardinality_range();
        assert!(clo >= 1.0 && chi >= clo);
    }
}
