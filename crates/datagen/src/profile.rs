//! Dataset profiling — the statistics of paper Table 1.

use std::collections::HashMap;

use cardbench_storage::{Catalog, Table};

use crate::dist::{pearson, skewness};

/// The per-dataset statistics reported in paper Table 1.
#[derive(Debug, Clone)]
pub struct DatasetProfile {
    /// Dataset label.
    pub name: String,
    /// Number of tables.
    pub table_count: usize,
    /// Number of filterable (n./c.) attributes across all tables.
    pub nc_attr_count: usize,
    /// Minimum filterable attributes in any table.
    pub attrs_per_table_min: usize,
    /// Maximum filterable attributes in any table.
    pub attrs_per_table_max: usize,
    /// Full-outer-join size over a BFS spanning tree of the schema graph
    /// (the paper's cyclic extra edges are excluded; see EXPERIMENTS.md).
    pub full_join_size: f64,
    /// Sum of distinct-value counts over all filterable attributes.
    pub total_domain_size: usize,
    /// Average moment skewness over filterable attributes.
    pub avg_skewness: f64,
    /// Average |Pearson| over intra-table filterable attribute pairs.
    pub avg_abs_correlation: f64,
    /// Number of schema join relations.
    pub join_relation_count: usize,
    /// "star" when every relation shares one hub table, else "star/chain/mixed".
    pub join_forms: String,
}

/// Computes the profile of a catalog.
pub fn dataset_profile(name: &str, catalog: &Catalog) -> DatasetProfile {
    let per_table: Vec<usize> = catalog
        .tables()
        .iter()
        .map(|t| t.schema().filterable_columns().len())
        .collect();

    let mut total_domain = 0usize;
    let mut skews = Vec::new();
    let mut corrs = Vec::new();
    for table in catalog.tables() {
        let filt = table.schema().filterable_columns();
        for &ci in &filt {
            let col = table.column(ci);
            let stats = col.compute_stats();
            total_domain += stats.distinct_count;
            let vals: Vec<f64> = col.iter().flatten().map(|v| v as f64).collect();
            if vals.len() >= 2 {
                skews.push(skewness(vals.iter().copied()));
            }
        }
        // Pairwise correlation computed over rows where both are non-null.
        for i in 0..filt.len() {
            for j in i + 1..filt.len() {
                let (xs, ys) = paired_non_null(table, filt[i], filt[j]);
                if xs.len() >= 2 {
                    corrs.push(pearson(&xs, &ys).abs());
                }
            }
        }
    }

    let hub_star = is_pure_star(catalog);
    DatasetProfile {
        name: name.to_string(),
        table_count: catalog.table_count(),
        nc_attr_count: per_table.iter().sum(),
        attrs_per_table_min: per_table.iter().copied().min().unwrap_or(0),
        attrs_per_table_max: per_table.iter().copied().max().unwrap_or(0),
        full_join_size: spanning_tree_join_size(catalog),
        total_domain_size: total_domain,
        avg_skewness: mean(&skews),
        avg_abs_correlation: mean(&corrs),
        join_relation_count: catalog.joins().len(),
        join_forms: if hub_star {
            "star".to_string()
        } else {
            "star/chain/mixed".to_string()
        },
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn paired_non_null(table: &Table, a: usize, b: usize) -> (Vec<f64>, Vec<f64>) {
    let ca = table.column(a);
    let cb = table.column(b);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for r in 0..table.row_count() {
        if let (Some(x), Some(y)) = (ca.get(r), cb.get(r)) {
            xs.push(x as f64);
            ys.push(y as f64);
        }
    }
    (xs, ys)
}

fn is_pure_star(catalog: &Catalog) -> bool {
    let joins = catalog.joins();
    if joins.is_empty() {
        return false;
    }
    catalog.tables().iter().any(|hub| {
        joins
            .iter()
            .all(|j| j.left_table == hub.name() || j.right_table == hub.name())
    })
}

/// Full-outer-join size over a BFS spanning tree of the schema graph
/// (paper Table 1's "full outer join size"), computed bottom-up: each
/// row's weight is the number of FOJ combinations of its subtree that
/// include it — the product over child edges of `max(matched child
/// weight, 1)` (an unmatched branch contributes one NULL-padded way) —
/// and child rows matching no parent are NULL-padded dangling rows added
/// directly to the total. Overflow-safe via `f64`.
#[allow(clippy::needless_range_loop)] // row ids index parallel weight vectors
pub fn spanning_tree_join_size(catalog: &Catalog) -> f64 {
    let n = catalog.table_count();
    if n == 0 {
        return 0.0;
    }
    // Build spanning tree by BFS over join relations.
    let mut parent: Vec<Option<(usize, usize, usize)>> = vec![None; n]; // (parent, child_col, parent_col)
    let mut visited = vec![false; n];
    let mut order = vec![0usize];
    visited[0] = true;
    let mut qi = 0;
    while qi < order.len() {
        let cur = qi;
        let cur_table = order[cur];
        qi += 1;
        let cur_name = catalog.tables()[cur_table].name().to_string();
        for j in catalog.joins() {
            let (other_name, my_col, other_col) = if j.left_table == cur_name {
                (&j.right_table, &j.left_column, &j.right_column)
            } else if j.right_table == cur_name {
                (&j.left_table, &j.right_column, &j.left_column)
            } else {
                continue;
            };
            let other = catalog.table_id(other_name).expect("table exists").0;
            if !visited[other] {
                visited[other] = true;
                let child_schema = catalog.tables()[other].schema();
                let my_schema = catalog.tables()[cur_table].schema();
                parent[other] = Some((
                    cur_table,
                    child_schema.column_index(other_col).expect("join col"),
                    my_schema.column_index(my_col).expect("join col"),
                ));
                order.push(other);
            }
        }
    }

    // Bottom-up weights (reverse BFS order), only over visited tables.
    let mut weights: Vec<Vec<f64>> = catalog
        .tables()
        .iter()
        .map(|t| vec![1.0f64; t.row_count()])
        .collect();
    let mut dangling = 0.0f64;
    for &t in order.iter().rev() {
        if let Some((p, child_col, parent_col)) = parent[t] {
            let child = &catalog.tables()[t];
            // Sum child weights per key value.
            let mut by_key: HashMap<i64, f64> = HashMap::new();
            let col = child.column(child_col);
            for r in 0..child.row_count() {
                if let Some(v) = col.get(r) {
                    *by_key.entry(v).or_insert(0.0) += weights[t][r];
                }
            }
            let ptab = &catalog.tables()[p];
            let pcol = ptab.column(parent_col);
            let mut parent_keys: std::collections::HashSet<i64> = std::collections::HashSet::new();
            for r in 0..ptab.row_count() {
                let m = pcol
                    .get(r)
                    .and_then(|v| by_key.get(&v).copied())
                    .unwrap_or(0.0);
                // Outer semantics: an unmatched branch keeps the parent row
                // alive with one NULL-padded combination.
                weights[p][r] *= m.max(1.0);
                if let Some(v) = pcol.get(r) {
                    parent_keys.insert(v);
                }
            }
            // Child rows with NULL keys or keys absent from the parent are
            // NULL-padded dangling FOJ rows.
            for r in 0..child.row_count() {
                match col.get(r) {
                    Some(v) if parent_keys.contains(&v) => {}
                    _ => dangling += weights[t][r],
                }
            }
        }
    }
    weights[order[0]].iter().sum::<f64>() + dangling
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imdb::{imdb_catalog, ImdbConfig};
    use crate::stats::{stats_catalog, StatsConfig};
    use cardbench_storage::{Column, ColumnDef, ColumnKind, JoinKind, JoinRelation, TableSchema};

    #[test]
    fn spanning_join_size_matches_manual() {
        // a(id) 1..3; b(aid) = [1,1,2] → inner pairs 3, plus a.id=3
        // surviving NULL-padded → full outer join size 4.
        let mut c = Catalog::new();
        c.add_table(
            Table::from_columns(
                TableSchema::new("a", vec![ColumnDef::new("id", ColumnKind::PrimaryKey)]),
                vec![Column::from_values(vec![1, 2, 3])],
            )
            .unwrap(),
        );
        c.add_table(
            Table::from_columns(
                TableSchema::new("b", vec![ColumnDef::new("aid", ColumnKind::ForeignKey)]),
                vec![Column::from_values(vec![1, 1, 2])],
            )
            .unwrap(),
        );
        c.add_join(JoinRelation::new("a", "id", "b", "aid", JoinKind::PkFk))
            .unwrap();
        assert_eq!(spanning_tree_join_size(&c), 4.0);
    }

    #[test]
    fn stats_profile_dominates_imdb_profile() {
        let stats = dataset_profile("STATS", &stats_catalog(&StatsConfig::tiny(2)));
        let imdb = dataset_profile("IMDB", &imdb_catalog(&ImdbConfig::tiny(2)));
        assert_eq!(stats.table_count, 8);
        assert_eq!(imdb.table_count, 6);
        assert_eq!(stats.nc_attr_count, 23);
        assert_eq!(imdb.nc_attr_count, 8);
        assert_eq!(stats.join_relation_count, 12);
        assert_eq!(imdb.join_relation_count, 5);
        assert_eq!(imdb.join_forms, "star");
        assert_eq!(stats.join_forms, "star/chain/mixed");
        // The two headline data-complexity criteria of Table 1.
        assert!(
            stats.avg_skewness > imdb.avg_skewness,
            "skew: stats {} vs imdb {}",
            stats.avg_skewness,
            imdb.avg_skewness
        );
        assert!(
            stats.avg_abs_correlation > imdb.avg_abs_correlation,
            "corr: stats {} vs imdb {}",
            stats.avg_abs_correlation,
            imdb.avg_abs_correlation
        );
    }

    #[test]
    fn join_size_positive_on_generated_data() {
        let c = stats_catalog(&StatsConfig::tiny(4));
        assert!(spanning_tree_join_size(&c) > 0.0);
    }
}
