//! The simplified-IMDB dataset behind the JOB-LIGHT workload: 6 tables,
//! 8 filterable attributes (1–2 per table), and a pure star schema — every
//! satellite table joins `title.id` via a foreign key (5 PK-FK relations).
//!
//! Compared with the STATS profile, skew and correlation are milder,
//! reproducing the paper's point that JOB-LIGHT under-separates estimators
//! (observation O2).

use cardbench_support::rand::rngs::StdRng;
use cardbench_support::rand::{Rng, SeedableRng};

use cardbench_storage::{
    Catalog, ColumnDef, ColumnKind, Datum, JoinKind, JoinRelation, Table, TableSchema,
};

use crate::dist::{LatentRowModel, Zipf};

/// Scaled-down base row counts preserving the relative sizes of the IMDB
/// subset (title is the hub; cast_info the largest satellite).
const BASE_ROWS: [(&str, usize); 6] = [
    ("title", 60_000),
    ("movie_companies", 62_000),
    ("cast_info", 200_000),
    ("movie_info", 140_000),
    ("movie_info_idx", 33_000),
    ("movie_keyword", 108_000),
];

/// Configuration of the simplified-IMDB generator.
#[derive(Debug, Clone)]
pub struct ImdbConfig {
    /// Row-count multiplier versus [`BASE_ROWS`].
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Zipf exponent of attribute marginals (milder than STATS).
    pub attr_skew: f64,
    /// Zipf exponent of join-key degrees.
    pub key_skew: f64,
    /// Latent coupling (milder than STATS).
    pub coupling: f64,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        ImdbConfig {
            scale: 0.05,
            seed: 0xBEEF,
            attr_skew: 1.1,
            key_skew: 0.35,
            coupling: 0.4,
        }
    }
}

impl ImdbConfig {
    /// A tiny configuration for unit tests.
    pub fn tiny(seed: u64) -> ImdbConfig {
        ImdbConfig {
            scale: 0.005,
            seed,
            ..ImdbConfig::default()
        }
    }

    /// Scaled row count of a table.
    pub fn rows_of(&self, table: &str) -> usize {
        let base = BASE_ROWS
            .iter()
            .find(|(n, _)| *n == table)
            .map(|(_, r)| *r)
            .expect("known table");
        ((base as f64 * self.scale).round() as usize).max(8)
    }
}

/// The 5 star-join relations of the simplified IMDB schema.
pub fn imdb_joins() -> Vec<JoinRelation> {
    [
        "movie_companies",
        "cast_info",
        "movie_info",
        "movie_info_idx",
        "movie_keyword",
    ]
    .into_iter()
    .map(|t| JoinRelation::new("title", "id", t, "movie_id", JoinKind::PkFk))
    .collect()
}

fn satellite_schema(name: &str, attrs: &[&str]) -> TableSchema {
    let mut cols = vec![
        ColumnDef::new("id", ColumnKind::PrimaryKey),
        ColumnDef::new("movie_id", ColumnKind::ForeignKey),
    ];
    for a in attrs {
        cols.push(ColumnDef::new(*a, ColumnKind::Categorical));
    }
    TableSchema::new(name, cols)
}

/// Generates the simplified-IMDB catalog.
pub fn imdb_catalog(cfg: &ImdbConfig) -> Catalog {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let model = LatentRowModel::new(128, 0.0, cfg.coupling);

    let n_title = cfg.rows_of("title");
    let mut title_latent = Vec::with_capacity(n_title);
    let kind_zipf = Zipf::new(7, 1.0);
    let year_zipf = Zipf::new(130, cfg.attr_skew);
    let mut title = Table::empty(TableSchema::new(
        "title",
        vec![
            ColumnDef::new("id", ColumnKind::PrimaryKey),
            ColumnDef::new("kind_id", ColumnKind::Categorical),
            ColumnDef::new("production_year", ColumnKind::Numeric),
        ],
    ));
    for tid in 0..n_title {
        let z = model.draw_latent(&mut rng);
        let kind = kind_zipf.sample(&mut rng) as i64 + 1;
        // Years cluster toward the recent end (rank 0 = most recent).
        let year = 2019 - model.draw_attr(&mut rng, z, 130, cfg.attr_skew, &year_zipf);
        let year: Datum = if rng.gen::<f64>() < 0.05 {
            None
        } else {
            Some(year)
        };
        title
            .append_row(&[Some(tid as i64 + 1), Some(kind), year])
            .expect("arity");
        title_latent.push(z);
    }
    let mut order: Vec<usize> = (0..n_title).collect();
    order.sort_by(|&a, &b| title_latent[b].partial_cmp(&title_latent[a]).unwrap());
    let pop = Zipf::new(n_title, cfg.key_skew);

    let mut catalog = Catalog::new();
    catalog.add_table(title);

    let satellites: [(&str, &[&str], usize); 5] = [
        ("movie_companies", &["company_type_id"], 5),
        ("cast_info", &["role_id", "nr_order"], 12),
        ("movie_info", &["info_type_id"], 110),
        ("movie_info_idx", &["info_type_id"], 5),
        ("movie_keyword", &["keyword_id"], 1500),
    ];
    for (name, attrs, domain) in satellites {
        let schema = satellite_schema(name, attrs);
        let mut t = Table::empty(schema);
        let attr_zipfs: Vec<Zipf> = attrs
            .iter()
            .map(|_| Zipf::new(domain, cfg.attr_skew))
            .collect();
        for rid in 0..cfg.rows_of(name) {
            let movie = order[pop.sample(&mut rng)];
            let z = title_latent[movie];
            let mut row: Vec<Datum> = vec![Some(rid as i64 + 1), Some(movie as i64 + 1)];
            for az in &attr_zipfs {
                row.push(Some(
                    model.draw_attr(&mut rng, z, domain, cfg.attr_skew, az) + 1,
                ));
            }
            t.append_row(&row).expect("arity");
        }
        catalog.add_table(t);
    }
    for j in imdb_joins() {
        catalog.add_join(j).expect("tables exist");
    }
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_tables_five_star_joins() {
        let c = imdb_catalog(&ImdbConfig::tiny(3));
        assert_eq!(c.table_count(), 6);
        assert_eq!(c.joins().len(), 5);
        for j in c.joins() {
            assert_eq!(j.left_table, "title");
        }
    }

    #[test]
    fn eight_filterable_attributes_max_two_per_table() {
        let c = imdb_catalog(&ImdbConfig::tiny(3));
        let counts: Vec<usize> = c
            .tables()
            .iter()
            .map(|t| t.schema().filterable_columns().len())
            .collect();
        assert_eq!(counts.iter().sum::<usize>(), 8);
        assert!(counts.iter().all(|&k| (1..=2).contains(&k)));
    }

    #[test]
    fn deterministic() {
        let a = imdb_catalog(&ImdbConfig::tiny(11));
        let b = imdb_catalog(&ImdbConfig::tiny(11));
        for (ta, tb) in a.tables().iter().zip(b.tables()) {
            assert_eq!(ta.row_count(), tb.row_count());
            for r in 0..ta.row_count().min(20) {
                assert_eq!(ta.row(r), tb.row(r));
            }
        }
    }

    #[test]
    fn fk_integrity() {
        let c = imdb_catalog(&ImdbConfig::tiny(5));
        let n_title = c.table_by_name("title").unwrap().row_count() as i64;
        let ci = c.table_by_name("cast_info").unwrap();
        let col = ci.column_by_name("movie_id").unwrap();
        for r in 0..ci.row_count() {
            let v = col.get(r).unwrap();
            assert!(v >= 1 && v <= n_title);
        }
    }
}
