//! Distribution machinery: Zipf sampling and a latent-variable row model
//! that plants correlation between attributes of one table.

use cardbench_support::rand::rngs::StdRng;
use cardbench_support::rand::Rng;

/// A Zipf(α) distribution over ranks `0..n`, sampled by inverse-CDF binary
/// search on a precomputed cumulative table. Rank 0 is the most frequent.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution. `n >= 1`; `alpha >= 0` (0 = uniform).
    pub fn new(n: usize, alpha: f64) -> Zipf {
        assert!(n >= 1, "Zipf needs a non-empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Domain size.
    pub fn domain(&self) -> usize {
        self.cdf.len()
    }

    /// Samples a rank in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Quantile function: the smallest rank whose CDF reaches `p`.
    pub fn quantile(&self, p: f64) -> usize {
        self.cdf.partition_point(|&c| c < p).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

/// A latent-variable generator for one table's filterable attributes.
///
/// Each row draws a latent "activity" `z ∈ [0,1)` (Zipf-shaped so a few
/// rows are very active). Each attribute is a noisy monotone function of
/// `z`, which plants positive pairwise correlation (paper Table 1 reports
/// ≈0.22 average |corr| for STATS vs ≈0.15 for IMDB) while Zipf rank maps
/// keep marginals heavy-tailed (skewness ≈21.8 vs ≈9.2).
#[derive(Debug, Clone)]
pub struct LatentRowModel {
    latent: Zipf,
    /// How strongly attributes follow the latent (0 = independent,
    /// 1 = deterministic).
    coupling: f64,
}

impl LatentRowModel {
    /// `levels`: resolution of the latent variable; `latent_alpha`: skew of
    /// the latent itself; `coupling`: attribute-latent coupling in [0,1].
    pub fn new(levels: usize, latent_alpha: f64, coupling: f64) -> LatentRowModel {
        LatentRowModel {
            latent: Zipf::new(levels, latent_alpha),
            coupling: coupling.clamp(0.0, 1.0),
        }
    }

    /// Draws a latent level in `[0,1)` for one row.
    pub fn draw_latent(&self, rng: &mut StdRng) -> f64 {
        let rank = self.latent.sample(rng);
        rank as f64 / self.latent.domain() as f64
    }

    /// Draws one attribute value as a Zipf rank over `domain`, coupled to
    /// the row latent `z`: with probability `coupling` the rank tracks `z`
    /// (plus small jitter), otherwise it is an independent Zipf draw.
    pub fn draw_attr(
        &self,
        rng: &mut StdRng,
        z: f64,
        domain: usize,
        attr_alpha: f64,
        attr_zipf: &Zipf,
    ) -> i64 {
        debug_assert_eq!(attr_zipf.domain(), domain);
        debug_assert!(attr_alpha >= 0.0);
        if rng.gen::<f64>() < self.coupling {
            // Deterministic-with-jitter mapping latent → rank through the
            // attribute's own quantile function, so coupling preserves the
            // Zipf-shaped marginal (a linear map would flatten it).
            let jitter = (rng.gen::<f64>() - 0.5) * 0.1;
            let pos = (z + jitter).clamp(0.0, 1.0 - 1e-9);
            attr_zipf.quantile(pos) as i64
        } else {
            attr_zipf.sample(rng) as i64
        }
    }
}

/// Moment skewness `E[(x-μ)³]/σ³` of a sample (absolute value), the
/// "distribution skewness" statistic of paper Table 1.
pub fn skewness(values: impl Iterator<Item = f64> + Clone) -> f64 {
    let n = values.clone().count();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mean = values.clone().sum::<f64>() / nf;
    let m2 = values.clone().map(|v| (v - mean).powi(2)).sum::<f64>() / nf;
    let m3 = values.clone().map(|v| (v - mean).powi(3)).sum::<f64>() / nf;
    if m2 <= 0.0 {
        0.0
    } else {
        (m3 / m2.powf(1.5)).abs()
    }
}

/// Pearson correlation of two equal-length samples.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardbench_support::rand::SeedableRng;

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(100, 1.2);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_rank_zero_most_likely() {
        let z = Zipf::new(50, 1.5);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
    }

    #[test]
    fn zipf_uniform_when_alpha_zero() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn zipf_samples_in_domain_and_skewed() {
        let z = Zipf::new(20, 1.5);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 20];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(counts[0] > 4000); // pmf(0) ≈ 0.42 for alpha=1.5, n=20
    }

    #[test]
    fn skewness_zero_for_symmetric() {
        let sym = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(sym.iter().copied()) < 1e-9);
    }

    #[test]
    fn skewness_positive_for_heavy_tail() {
        let tail = [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 100.0];
        assert!(skewness(tail.iter().copied()) > 2.0);
    }

    #[test]
    fn pearson_perfect_and_null() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-9);
        let flat = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(pearson(&xs, &flat), 0.0);
    }

    #[test]
    fn latent_model_plants_correlation() {
        let m = LatentRowModel::new(64, 0.8, 0.7);
        let mut rng = StdRng::seed_from_u64(42);
        let zipf = Zipf::new(100, 1.0);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..4000 {
            let z = m.draw_latent(&mut rng);
            a.push(m.draw_attr(&mut rng, z, 100, 1.0, &zipf) as f64);
            b.push(m.draw_attr(&mut rng, z, 100, 1.0, &zipf) as f64);
        }
        let r = pearson(&a, &b);
        assert!(r > 0.2, "planted correlation too weak: {r}");
    }
}
