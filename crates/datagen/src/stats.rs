//! The STATS-profile dataset: 8 tables, 23 filterable n./c. attributes,
//! and the 12 join relations of paper Figure 1 (11 PK-FK + 1 FK-FK),
//! giving a *cyclic* schema graph with chain, star and mixed join forms.
//!
//! Row counts default to `scale ×` the real STATS table sizes. Value
//! generation plants the properties the paper's analysis depends on:
//! Zipf-skewed marginals, latent-coupled intra-table correlation, and
//! join keys whose degree ranges from zero to hundreds of matches (the
//! skew paper observation O3 attributes NeuroCard's failure to).

use cardbench_support::rand::rngs::StdRng;
use cardbench_support::rand::{Rng, SeedableRng};

use cardbench_storage::{
    Catalog, ColumnDef, ColumnKind, Datum, JoinKind, JoinRelation, Table, TableSchema,
};

use crate::dist::{LatentRowModel, Zipf};

/// Draws a child timestamp: soon after `parent` with a heavy bias toward
/// small gaps (comments/votes arrive shortly after the post), keeping the
/// temporal split near the 50% the paper's update experiment uses.
fn child_date(rng: &mut StdRng, parent: i64) -> i64 {
    let gap = ((DAYS_MAX - parent) as f64 * rng.gen::<f64>().powi(4)) as i64;
    (parent + gap).min(DAYS_MAX - 1)
}

/// Real STATS row counts the generator scales from.
const REAL_ROWS: [(&str, usize); 8] = [
    ("users", 40_325),
    ("posts", 91_976),
    ("comments", 174_305),
    ("badges", 79_851),
    ("votes", 328_064),
    ("postHistory", 303_187),
    ("postLinks", 11_102),
    ("tags", 1_032),
];

/// Day-resolution timestamp domain (8 years of forum activity).
pub const DAYS_MAX: i64 = 2920;

/// The temporal cutoff used by the dynamic-update experiment (paper
/// Table 6 trains on tuples "created before 2014, roughly 50%").
pub const SPLIT_DAY: i64 = DAYS_MAX / 2;

/// Configuration of the STATS-profile generator.
#[derive(Debug, Clone)]
pub struct StatsConfig {
    /// Row-count multiplier versus the real STATS sizes. `0.01` builds a
    /// ~10k-row database suitable for tests; `0.05`–`0.2` for benchmarks.
    pub scale: f64,
    /// RNG seed; the dataset is a pure function of the config.
    pub seed: u64,
    /// Zipf exponent of attribute marginals (paper STATS: avg skew ≈21.8).
    pub attr_skew: f64,
    /// Zipf exponent of join-key degree distributions.
    pub key_skew: f64,
    /// Latent coupling planting intra-table correlation (≈0.22 avg |r|).
    pub coupling: f64,
}

impl Default for StatsConfig {
    fn default() -> Self {
        StatsConfig {
            scale: 0.02,
            seed: 0xC0FFEE,
            attr_skew: 1.6,
            key_skew: 1.1,
            coupling: 0.75,
        }
    }
}

impl StatsConfig {
    /// A tiny configuration for unit tests (~1.5k rows total).
    pub fn tiny(seed: u64) -> StatsConfig {
        StatsConfig {
            scale: 0.002,
            seed,
            ..StatsConfig::default()
        }
    }

    /// Scaled row count of a table.
    pub fn rows_of(&self, table: &str) -> usize {
        let real = REAL_ROWS
            .iter()
            .find(|(n, _)| *n == table)
            .map(|(_, r)| *r)
            .expect("known table");
        ((real as f64 * self.scale).round() as usize).max(8)
    }
}

/// Date column per table, used by the temporal split of the update
/// experiment. `tags` is static (no date column in real STATS either).
pub const DATE_COLUMNS: [(&str, Option<&str>); 8] = [
    ("users", Some("CreationDate")),
    ("posts", Some("CreationDate")),
    ("comments", Some("CreationDate")),
    ("badges", Some("Date")),
    ("votes", Some("CreationDate")),
    ("postHistory", Some("CreationDate")),
    ("postLinks", Some("CreationDate")),
    ("tags", None),
];

fn schema_users() -> TableSchema {
    TableSchema::new(
        "users",
        vec![
            ColumnDef::new("Id", ColumnKind::PrimaryKey),
            ColumnDef::new("Reputation", ColumnKind::Numeric),
            ColumnDef::new("CreationDate", ColumnKind::Numeric),
            ColumnDef::new("Views", ColumnKind::Numeric),
            ColumnDef::new("UpVotes", ColumnKind::Numeric),
        ],
    )
}

fn schema_posts() -> TableSchema {
    TableSchema::new(
        "posts",
        vec![
            ColumnDef::new("Id", ColumnKind::PrimaryKey),
            ColumnDef::new("OwnerUserId", ColumnKind::ForeignKey),
            ColumnDef::new("PostTypeId", ColumnKind::Categorical),
            ColumnDef::new("CreationDate", ColumnKind::Numeric),
            ColumnDef::new("Score", ColumnKind::Numeric),
            ColumnDef::new("ViewCount", ColumnKind::Numeric),
            ColumnDef::new("AnswerCount", ColumnKind::Numeric),
            ColumnDef::new("CommentCount", ColumnKind::Numeric),
            ColumnDef::new("FavoriteCount", ColumnKind::Numeric),
            ColumnDef::new("LastActivityDate", ColumnKind::Numeric),
        ],
    )
}

fn schema_comments() -> TableSchema {
    TableSchema::new(
        "comments",
        vec![
            ColumnDef::new("Id", ColumnKind::PrimaryKey),
            ColumnDef::new("PostId", ColumnKind::ForeignKey),
            ColumnDef::new("UserId", ColumnKind::ForeignKey),
            ColumnDef::new("Score", ColumnKind::Numeric),
            ColumnDef::new("CreationDate", ColumnKind::Numeric),
        ],
    )
}

fn schema_badges() -> TableSchema {
    TableSchema::new(
        "badges",
        vec![
            ColumnDef::new("Id", ColumnKind::PrimaryKey),
            ColumnDef::new("UserId", ColumnKind::ForeignKey),
            ColumnDef::new("Date", ColumnKind::Numeric),
        ],
    )
}

fn schema_votes() -> TableSchema {
    TableSchema::new(
        "votes",
        vec![
            ColumnDef::new("Id", ColumnKind::PrimaryKey),
            ColumnDef::new("PostId", ColumnKind::ForeignKey),
            ColumnDef::new("UserId", ColumnKind::ForeignKey),
            ColumnDef::new("VoteTypeId", ColumnKind::Categorical),
            ColumnDef::new("CreationDate", ColumnKind::Numeric),
            ColumnDef::new("BountyAmount", ColumnKind::Numeric),
        ],
    )
}

fn schema_post_history() -> TableSchema {
    TableSchema::new(
        "postHistory",
        vec![
            ColumnDef::new("Id", ColumnKind::PrimaryKey),
            ColumnDef::new("PostId", ColumnKind::ForeignKey),
            ColumnDef::new("UserId", ColumnKind::ForeignKey),
            ColumnDef::new("PostHistoryTypeId", ColumnKind::Categorical),
            ColumnDef::new("CreationDate", ColumnKind::Numeric),
        ],
    )
}

fn schema_post_links() -> TableSchema {
    TableSchema::new(
        "postLinks",
        vec![
            ColumnDef::new("Id", ColumnKind::PrimaryKey),
            ColumnDef::new("PostId", ColumnKind::ForeignKey),
            ColumnDef::new("RelatedPostId", ColumnKind::ForeignKey),
            ColumnDef::new("LinkTypeId", ColumnKind::Categorical),
            ColumnDef::new("CreationDate", ColumnKind::Numeric),
        ],
    )
}

fn schema_tags() -> TableSchema {
    TableSchema::new(
        "tags",
        vec![
            ColumnDef::new("Id", ColumnKind::PrimaryKey),
            ColumnDef::new("ExcerptPostId", ColumnKind::ForeignKey),
            ColumnDef::new("Count", ColumnKind::Numeric),
        ],
    )
}

/// The 12 join relations of paper Figure 1.
pub fn stats_joins() -> Vec<JoinRelation> {
    use JoinKind::{FkFk, PkFk};
    vec![
        JoinRelation::new("users", "Id", "posts", "OwnerUserId", PkFk),
        JoinRelation::new("users", "Id", "comments", "UserId", PkFk),
        JoinRelation::new("users", "Id", "badges", "UserId", PkFk),
        JoinRelation::new("users", "Id", "votes", "UserId", PkFk),
        JoinRelation::new("users", "Id", "postHistory", "UserId", PkFk),
        JoinRelation::new("posts", "Id", "comments", "PostId", PkFk),
        JoinRelation::new("posts", "Id", "votes", "PostId", PkFk),
        JoinRelation::new("posts", "Id", "postHistory", "PostId", PkFk),
        JoinRelation::new("posts", "Id", "postLinks", "PostId", PkFk),
        JoinRelation::new("posts", "Id", "postLinks", "RelatedPostId", PkFk),
        JoinRelation::new("posts", "Id", "tags", "ExcerptPostId", PkFk),
        JoinRelation::new("comments", "UserId", "badges", "UserId", FkFk),
    ]
}

/// Per-entity popularity: rank-ordered Zipf weights so entity latents and
/// FK in-degrees are correlated (popular users own many posts, etc.).
struct Popularity {
    /// Entity index ordered by descending popularity.
    order: Vec<usize>,
    zipf: Zipf,
}

impl Popularity {
    fn new(latents: &[f64], key_skew: f64) -> Popularity {
        let mut order: Vec<usize> = (0..latents.len()).collect();
        order.sort_by(|&a, &b| latents[b].partial_cmp(&latents[a]).unwrap());
        Popularity {
            zipf: Zipf::new(latents.len().max(1), key_skew),
            order,
        }
    }

    /// Samples an entity index, biased toward popular entities.
    fn sample(&self, rng: &mut StdRng) -> usize {
        self.order[self.zipf.sample(rng)]
    }
}

/// Generates the STATS-profile catalog.
pub fn stats_catalog(cfg: &StatsConfig) -> Catalog {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let model = LatentRowModel::new(256, 0.0, cfg.coupling);

    let n_users = cfg.rows_of("users");
    let n_posts = cfg.rows_of("posts");

    // --- users -----------------------------------------------------------
    let mut user_latent = Vec::with_capacity(n_users);
    let mut user_date = Vec::with_capacity(n_users);
    let rep_zipf = Zipf::new(1000, cfg.attr_skew);
    let views_zipf = Zipf::new(400, cfg.attr_skew);
    let upv_zipf = Zipf::new(300, cfg.attr_skew);
    let mut users = Table::empty(schema_users());
    for uid in 0..n_users {
        let z = model.draw_latent(&mut rng);
        // Active users tend to be early adopters.
        let date_span = (DAYS_MAX as f64 * (1.0 - 0.5 * z)) as i64;
        let date = rng.gen_range(0..date_span.max(1));
        let rep = heavy_map(model.draw_attr(&mut rng, z, 1000, cfg.attr_skew, &rep_zipf));
        let views = model.draw_attr(&mut rng, z, 400, cfg.attr_skew, &views_zipf);
        let upv = model.draw_attr(&mut rng, z, 300, cfg.attr_skew, &upv_zipf);
        users
            .append_row(&[
                Some(uid as i64 + 1),
                Some(rep),
                Some(date),
                Some(views),
                Some(upv),
            ])
            .expect("arity");
        user_latent.push(z);
        user_date.push(date);
    }
    let user_pop = Popularity::new(&user_latent, cfg.key_skew);

    // --- posts -----------------------------------------------------------
    let mut post_latent = Vec::with_capacity(n_posts);
    let mut post_date = Vec::with_capacity(n_posts);
    let score_zipf = Zipf::new(120, cfg.attr_skew);
    let view_zipf = Zipf::new(800, cfg.attr_skew);
    let ac_zipf = Zipf::new(30, cfg.attr_skew + 0.4);
    let cc_zipf = Zipf::new(40, cfg.attr_skew + 0.4);
    let fav_zipf = Zipf::new(60, cfg.attr_skew + 0.6);
    let ptype_zipf = Zipf::new(6, 1.1);
    let mut posts = Table::empty(schema_posts());
    for pid in 0..n_posts {
        let (owner, base_z, base_date): (Datum, f64, i64) = if rng.gen::<f64>() < 0.10 {
            (None, model.draw_latent(&mut rng), 0)
        } else {
            let u = user_pop.sample(&mut rng);
            (Some(u as i64 + 1), user_latent[u], user_date[u])
        };
        // Post latent blends owner activity with its own draw.
        let z = 0.6 * base_z + 0.4 * model.draw_latent(&mut rng);
        let date = child_date(&mut rng, base_date);
        let last_activity = child_date(&mut rng, date);
        let ptype = if z > 0.5 {
            // Active content skews toward questions/answers (types 1/2).
            (ptype_zipf.sample(&mut rng) as i64).min(2) + 1
        } else {
            ptype_zipf.sample(&mut rng) as i64 + 1
        };
        let score = model.draw_attr(&mut rng, z, 120, cfg.attr_skew, &score_zipf) - 3;
        let views = heavy_map(model.draw_attr(&mut rng, z, 800, cfg.attr_skew, &view_zipf));
        let ans = model.draw_attr(&mut rng, z, 30, cfg.attr_skew, &ac_zipf);
        let cc = model.draw_attr(&mut rng, z, 40, cfg.attr_skew, &cc_zipf);
        let fav: Datum = if rng.gen::<f64>() < 0.45 {
            None
        } else {
            Some(model.draw_attr(&mut rng, z, 60, cfg.attr_skew, &fav_zipf))
        };
        posts
            .append_row(&[
                Some(pid as i64 + 1),
                owner,
                Some(ptype),
                Some(date),
                Some(score),
                Some(views),
                Some(ans),
                Some(cc),
                fav,
                Some(last_activity),
            ])
            .expect("arity");
        post_latent.push(z);
        post_date.push(date);
    }
    let post_pop = Popularity::new(&post_latent, cfg.key_skew);

    // --- comments ----------------------------------------------------------
    let cscore_zipf = Zipf::new(25, cfg.attr_skew + 0.5);
    let mut comments = Table::empty(schema_comments());
    for cid in 0..cfg.rows_of("comments") {
        let p = post_pop.sample(&mut rng);
        let u = user_pop.sample(&mut rng);
        let z = 0.5 * post_latent[p] + 0.5 * user_latent[u];
        let date = child_date(&mut rng, post_date[p]);
        let uid: Datum = if rng.gen::<f64>() < 0.05 {
            None
        } else {
            Some(u as i64 + 1)
        };
        let score = model.draw_attr(&mut rng, z, 25, cfg.attr_skew, &cscore_zipf);
        comments
            .append_row(&[
                Some(cid as i64 + 1),
                Some(p as i64 + 1),
                uid,
                Some(score),
                Some(date),
            ])
            .expect("arity");
    }

    // --- badges ------------------------------------------------------------
    let mut badges = Table::empty(schema_badges());
    for bid in 0..cfg.rows_of("badges") {
        let u = user_pop.sample(&mut rng);
        let date = child_date(&mut rng, user_date[u]);
        badges
            .append_row(&[Some(bid as i64 + 1), Some(u as i64 + 1), Some(date)])
            .expect("arity");
    }

    // --- votes --------------------------------------------------------------
    let vtype_zipf = Zipf::new(10, 1.3);
    let bounty_zipf = Zipf::new(12, 1.0);
    let mut votes = Table::empty(schema_votes());
    for vid in 0..cfg.rows_of("votes") {
        let p = post_pop.sample(&mut rng);
        let date = child_date(&mut rng, post_date[p]);
        // Most votes are anonymous (NULL user), as in real STATS.
        let uid: Datum = if rng.gen::<f64>() < 0.65 {
            None
        } else {
            Some(user_pop.sample(&mut rng) as i64 + 1)
        };
        let vtype = vtype_zipf.sample(&mut rng) as i64 + 1;
        let bounty: Datum = if vtype == 8 {
            Some((bounty_zipf.sample(&mut rng) as i64 + 1) * 50)
        } else {
            None
        };
        votes
            .append_row(&[
                Some(vid as i64 + 1),
                Some(p as i64 + 1),
                uid,
                Some(vtype),
                Some(date),
                bounty,
            ])
            .expect("arity");
    }

    // --- postHistory ---------------------------------------------------------
    let htype_zipf = Zipf::new(20, 1.2);
    let mut post_history = Table::empty(schema_post_history());
    for hid in 0..cfg.rows_of("postHistory") {
        let p = post_pop.sample(&mut rng);
        let date = child_date(&mut rng, post_date[p]);
        let uid: Datum = if rng.gen::<f64>() < 0.20 {
            None
        } else {
            Some(user_pop.sample(&mut rng) as i64 + 1)
        };
        let htype = htype_zipf.sample(&mut rng) as i64 + 1;
        post_history
            .append_row(&[
                Some(hid as i64 + 1),
                Some(p as i64 + 1),
                uid,
                Some(htype),
                Some(date),
            ])
            .expect("arity");
    }

    // --- postLinks -------------------------------------------------------------
    let ltype_zipf = Zipf::new(4, 1.5);
    let mut post_links = Table::empty(schema_post_links());
    for lid in 0..cfg.rows_of("postLinks") {
        let p = post_pop.sample(&mut rng);
        let related = post_pop.sample(&mut rng);
        let date = child_date(&mut rng, post_date[p]);
        let ltype = ltype_zipf.sample(&mut rng) as i64 + 1;
        post_links
            .append_row(&[
                Some(lid as i64 + 1),
                Some(p as i64 + 1),
                Some(related as i64 + 1),
                Some(ltype),
                Some(date),
            ])
            .expect("arity");
    }

    // --- tags ----------------------------------------------------------------
    let mut tags = Table::empty(schema_tags());
    let tag_count_zipf = Zipf::new(500, cfg.attr_skew);
    for tid in 0..cfg.rows_of("tags") {
        let excerpt: Datum = if rng.gen::<f64>() < 0.35 {
            None
        } else {
            Some(post_pop.sample(&mut rng) as i64 + 1)
        };
        let count = heavy_map(tag_count_zipf.sample(&mut rng) as i64);
        tags.append_row(&[Some(tid as i64 + 1), excerpt, Some(count)])
            .expect("arity");
    }

    let mut catalog = Catalog::new();
    catalog.add_table(users);
    catalog.add_table(posts);
    catalog.add_table(comments);
    catalog.add_table(badges);
    catalog.add_table(votes);
    catalog.add_table(post_history);
    catalog.add_table(post_links);
    catalog.add_table(tags);
    for j in stats_joins() {
        catalog.add_join(j).expect("tables exist");
    }
    catalog
}

/// Maps a Zipf rank to a heavy-tailed value (quadratic blow-up of top
/// ranks) so numeric attributes get large, skewed domains.
fn heavy_map(rank: i64) -> i64 {
    rank + (rank * rank) / 8 + (rank * rank * rank) / 1024
}

/// Splits a catalog temporally for the update experiment: returns
/// `(stale, inserts)` where `stale` holds rows dated `< cutoff` (tables
/// without a date column stay whole in `stale`) and `inserts` holds the
/// remaining rows per table, preserving ids.
pub fn temporal_split(catalog: &Catalog, cutoff: i64) -> (Catalog, Vec<Table>) {
    let mut stale = Catalog::new();
    let mut inserts = Vec::new();
    for table in catalog.tables() {
        let date_col = DATE_COLUMNS
            .iter()
            .find(|(n, _)| *n == table.name())
            .and_then(|(_, c)| *c)
            .and_then(|c| table.schema().column_index(c));
        let (old_rows, new_rows): (Vec<usize>, Vec<usize>) = match date_col {
            None => ((0..table.row_count()).collect(), Vec::new()),
            Some(c) => {
                let col = table.column(c);
                (0..table.row_count()).partition(|&r| col.get(r).is_none_or(|d| d < cutoff))
            }
        };
        stale.add_table(table.take_rows(&old_rows));
        inserts.push(table.take_rows(&new_rows));
    }
    for j in catalog.joins() {
        stale.add_join(j.clone()).expect("same tables");
    }
    (stale, inserts)
}

/// Samples a delete stream for churn experiments: roughly `frac` of each
/// table's rows, chosen per-row by seeded coin flip, packaged as one
/// delta [`Table`] per catalog table (the same shape
/// [`temporal_split`]'s insert stream uses). Deterministic in `seed`.
pub fn churn_sample(catalog: &Catalog, frac: f64, seed: u64) -> Vec<Table> {
    let frac = frac.clamp(0.0, 1.0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc4u64.rotate_left(32));
    catalog
        .tables()
        .iter()
        .map(|table| {
            let rows: Vec<usize> = (0..table.row_count())
                .filter(|_| rng.gen_bool(frac))
                .collect();
            table.take_rows(&rows)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::pearson;

    fn tiny() -> Catalog {
        stats_catalog(&StatsConfig::tiny(1))
    }

    #[test]
    fn churn_sample_is_deterministic_and_proportional() {
        let cat = tiny();
        let a = churn_sample(&cat, 0.2, 7);
        let b = churn_sample(&cat, 0.2, 7);
        assert_eq!(a.len(), cat.table_count());
        for (t, (da, db)) in a.iter().zip(&b).enumerate() {
            assert_eq!(da.row_count(), db.row_count(), "table {t}");
            let n = cat.tables()[t].row_count();
            assert!(da.row_count() <= n);
            if n >= 100 {
                let frac = da.row_count() as f64 / n as f64;
                assert!((0.05..0.5).contains(&frac), "table {t}: frac {frac}");
            }
        }
        // Different seed, different sample.
        let c = churn_sample(&cat, 0.2, 8);
        assert!(a
            .iter()
            .zip(&c)
            .any(|(x, y)| x.row_count() != y.row_count()));
        // Degenerate fractions are total / empty.
        assert!(churn_sample(&cat, 0.0, 7)
            .iter()
            .all(|t| t.row_count() == 0));
        for (t, d) in churn_sample(&cat, 1.0, 7).iter().enumerate() {
            assert_eq!(d.row_count(), cat.tables()[t].row_count());
        }
    }

    #[test]
    fn has_eight_tables_and_twelve_joins() {
        let c = tiny();
        assert_eq!(c.table_count(), 8);
        assert_eq!(c.joins().len(), 12);
    }

    #[test]
    fn twenty_three_filterable_attributes() {
        let c = tiny();
        let total: usize = c
            .tables()
            .iter()
            .map(|t| t.schema().filterable_columns().len())
            .sum();
        assert_eq!(total, 23);
        for t in c.tables() {
            let k = t.schema().filterable_columns().len();
            assert!(
                (1..=8).contains(&k),
                "{} has {k} filterable attrs",
                t.name()
            );
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = stats_catalog(&StatsConfig::tiny(9));
        let b = stats_catalog(&StatsConfig::tiny(9));
        for (ta, tb) in a.tables().iter().zip(b.tables()) {
            assert_eq!(ta.row_count(), tb.row_count());
            for r in 0..ta.row_count().min(50) {
                assert_eq!(ta.row(r), tb.row(r));
            }
        }
    }

    #[test]
    fn foreign_keys_reference_valid_ids() {
        let c = tiny();
        let n_users = c.table_by_name("users").unwrap().row_count() as i64;
        let n_posts = c.table_by_name("posts").unwrap().row_count() as i64;
        let comments = c.table_by_name("comments").unwrap();
        for r in 0..comments.row_count() {
            if let Some(pid) = comments.column_by_name("PostId").unwrap().get(r) {
                assert!(pid >= 1 && pid <= n_posts);
            }
            if let Some(uid) = comments.column_by_name("UserId").unwrap().get(r) {
                assert!(uid >= 1 && uid <= n_users);
            }
        }
    }

    #[test]
    fn join_key_degrees_are_skewed() {
        let c = stats_catalog(&StatsConfig {
            scale: 0.01,
            ..StatsConfig::default()
        });
        let comments = c.table_by_name("comments").unwrap();
        let col = comments.column_by_name("PostId").unwrap();
        let mut degree = std::collections::HashMap::new();
        for r in 0..comments.row_count() {
            if let Some(v) = col.get(r) {
                *degree.entry(v).or_insert(0usize) += 1;
            }
        }
        let max_deg = *degree.values().max().unwrap();
        let n_posts = c.table_by_name("posts").unwrap().row_count();
        let zero_deg = n_posts - degree.len();
        // O3's precondition: some keys match hundreds of tuples, others none.
        assert!(max_deg >= 20, "max degree {max_deg}");
        assert!(zero_deg > 0, "expected posts without comments");
    }

    #[test]
    fn intra_table_correlation_planted() {
        let c = stats_catalog(&StatsConfig {
            scale: 0.01,
            ..StatsConfig::default()
        });
        let posts = c.table_by_name("posts").unwrap();
        let score = posts.column_by_name("Score").unwrap();
        let views = posts.column_by_name("ViewCount").unwrap();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for r in 0..posts.row_count() {
            if let (Some(s), Some(v)) = (score.get(r), views.get(r)) {
                xs.push(s as f64);
                ys.push(v as f64);
            }
        }
        let r = pearson(&xs, &ys);
        assert!(r > 0.1, "expected planted correlation, got {r}");
    }

    #[test]
    fn temporal_split_partitions_rows() {
        let c = tiny();
        let (stale, inserts) = temporal_split(&c, SPLIT_DAY);
        assert_eq!(stale.table_count(), 8);
        for (i, t) in c.tables().iter().enumerate() {
            assert_eq!(
                stale.tables()[i].row_count() + inserts[i].row_count(),
                t.row_count()
            );
        }
        // tags are static.
        let tag_idx = c.table_id("tags").unwrap().0;
        assert_eq!(inserts[tag_idx].row_count(), 0);
        // A decent share of rows lands on each side.
        let stale_rows: usize = stale.tables().iter().map(Table::row_count).sum();
        let total: usize = c.tables().iter().map(Table::row_count).sum();
        let frac = stale_rows as f64 / total as f64;
        assert!(frac > 0.2 && frac < 0.8, "stale fraction {frac}");
    }

    #[test]
    fn dates_respect_parent_child_order() {
        let c = tiny();
        let posts = c.table_by_name("posts").unwrap();
        let comments = c.table_by_name("comments").unwrap();
        let pdate = posts.column_by_name("CreationDate").unwrap();
        let cdate = comments.column_by_name("CreationDate").unwrap();
        let cpost = comments.column_by_name("PostId").unwrap();
        for r in 0..comments.row_count() {
            let pid = cpost.get(r).unwrap() as usize - 1;
            assert!(cdate.get(r).unwrap() >= pdate.get(pid).unwrap());
        }
    }
}
