//! Synthetic dataset generation reproducing the statistical profiles of the
//! paper's two benchmark datasets.
//!
//! The real STATS dump (Stack-Exchange) and the IMDB subset are not
//! available offline, so this crate builds *profile-equivalent* synthetic
//! datasets (see DESIGN.md §1, substitution 1): the same table/attribute
//! structure, the Figure-1 join graph, Zipf-skewed marginals, planted
//! intra-table correlation through latent activity variables, and skewed
//! join-key degree distributions. Everything is deterministic given a seed.
//!
//! - [`dist`]: Zipf and latent-correlated samplers.
//! - [`stats`]: the 8-table STATS-profile dataset (paper Figure 1).
//! - [`imdb`]: the 6-table simplified-IMDB star-schema dataset (JOB-LIGHT).
//! - [`profile`]: dataset statistics reported in paper Table 1.

pub mod dist;
pub mod imdb;
pub mod profile;
pub mod stats;

pub use dist::{LatentRowModel, Zipf};
pub use imdb::{imdb_catalog, ImdbConfig};
pub use profile::{dataset_profile, DatasetProfile};
pub use stats::{stats_catalog, StatsConfig};
