//! Generated datasets survive CSV persistence byte-for-byte.

use cardbench_datagen::{imdb_catalog, stats_catalog, ImdbConfig, StatsConfig};
use cardbench_storage::csv::{read_table, write_table};

#[test]
fn stats_tables_roundtrip_through_csv() {
    let catalog = stats_catalog(&StatsConfig::tiny(77));
    let dir = std::env::temp_dir().join("cardbench_csv_roundtrip_stats");
    std::fs::create_dir_all(&dir).unwrap();
    for table in catalog.tables() {
        let path = dir.join(format!("{}.csv", table.name()));
        write_table(table, &path).unwrap();
        let back = read_table(table.schema().clone(), &path).unwrap();
        assert_eq!(back.row_count(), table.row_count(), "{}", table.name());
        for r in (0..table.row_count()).step_by(7) {
            assert_eq!(back.row(r), table.row(r), "{} row {r}", table.name());
        }
    }
}

#[test]
fn imdb_tables_roundtrip_through_csv() {
    let catalog = imdb_catalog(&ImdbConfig::tiny(78));
    let dir = std::env::temp_dir().join("cardbench_csv_roundtrip_imdb");
    std::fs::create_dir_all(&dir).unwrap();
    for table in catalog.tables() {
        let path = dir.join(format!("{}.csv", table.name()));
        write_table(table, &path).unwrap();
        let back = read_table(table.schema().clone(), &path).unwrap();
        assert_eq!(back.row_count(), table.row_count());
        if table.row_count() > 0 {
            assert_eq!(back.row(0), table.row(0));
            assert_eq!(
                back.row(table.row_count() - 1),
                table.row(table.row_count() - 1)
            );
        }
    }
}
