//! Execution feedback for cardinality estimation: a concurrent cache of
//! *observed* true sub-plan cardinalities that any estimator's answers
//! can be overridden or corrected with — the adaptive design of Ivanov &
//! Bartunov (arXiv:1711.08330) transplanted onto the benchmark's
//! sub-plan space.
//!
//! The executor computes exact operator cardinalities on every timed run
//! and the planner's true-cardinality service computes exact counts for
//! every connected sub-plan; both are normally thrown away after scoring.
//! [`FeedbackStore`] keeps them, keyed two ways:
//!
//! * **exact**: the sub-plan query's `canonical_hash` (which subsumes the
//!   `(parent canonical_hash, mask)` pair — a mask projected out of its
//!   parent *is* a canonical sub-query, and hashing the projection lets
//!   identical sub-plans of different parent queries share one entry) →
//!   the last observed true cardinality. A hit replaces the inner
//!   estimate outright.
//! * **template**: the sub-plan's literal-invariant `template_hash` → a
//!   running mean of clamped log-ratios `ln(true/est)` from first
//!   observations. A hit on a *structural sibling* (same tables, joins,
//!   and predicate columns; different constants) multiplies the inner
//!   estimate by the clamped geometric-mean correction factor.
//!
//! Poisoning defenses (a chaos-wrapped estimator can feed NaN, ±inf,
//! negative, or astronomically wrong estimates into the observation
//! path): non-finite truths are rejected, non-finite/non-positive
//! estimates contribute no correction sample, every log-ratio sample is
//! clamped to `±ln(max_correction)`, the applied factor is clamped to
//! `[1/max_correction, max_correction]`, and the corrected product
//! saturates at `f64::MAX` — a correction can therefore never produce a
//! non-finite or negative estimate from a finite non-negative input.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use cardbench_engine::Database;
use cardbench_estimators::CardEst;
use cardbench_query::{JoinQuery, SubPlanQuery};
use cardbench_storage::Table;

/// Shard count for both maps: small power of two, index by low hash bits.
const SHARDS: usize = 16;

/// Tuning knobs of the feedback cache.
#[derive(Debug, Clone, Copy)]
pub struct FeedbackConfig {
    /// Minimum correction samples on a template before sibling
    /// corrections apply (the warmup: a single noisy sample must not
    /// steer every sibling).
    pub warmup: u64,
    /// Clamp for the multiplicative correction factor and for each
    /// log-ratio sample (`> 1`). Exact overrides are not clamped — they
    /// are observed truths.
    pub max_correction: f64,
}

impl Default for FeedbackConfig {
    fn default() -> FeedbackConfig {
        FeedbackConfig {
            warmup: 4,
            max_correction: 1e4,
        }
    }
}

/// Last observed truth for one exact sub-plan.
#[derive(Debug, Clone, Copy)]
struct ExactEntry {
    rows: f64,
    count: u64,
}

/// Correction accumulator for one structural template.
#[derive(Debug, Clone, Copy, Default)]
struct TemplateEntry {
    sum_log_ratio: f64,
    count: u64,
}

/// Point-in-time counters of the store (cumulative since construction).
/// Metric folding takes before/after deltas, mirroring the engine-cache
/// counter pattern.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeedbackStats {
    /// Lookups answered from feedback (overrides + corrections).
    pub hits: u64,
    /// Lookups that passed the inner estimate through unchanged.
    pub misses: u64,
    /// Exact-hit lookups: inner estimate replaced by an observed truth.
    pub overrides: u64,
    /// Sibling-hit lookups: inner estimate multiplied by a clamped
    /// correction factor.
    pub corrections: u64,
    /// Observations recorded (exact entries inserted or refreshed).
    pub observations: u64,
    /// Rejected inputs: non-finite/negative truths, plus first
    /// observations whose estimate was unusable as a correction sample.
    pub rejected: u64,
    /// Distinct exact sub-plan entries.
    pub exact_entries: u64,
    /// Distinct structural templates with at least one sample.
    pub template_entries: u64,
}

/// The concurrent feedback cache. Shared across sessions/threads behind
/// an `Arc`; all methods take `&self`.
pub struct FeedbackStore {
    cfg: FeedbackConfig,
    exact: Vec<Mutex<HashMap<u64, ExactEntry>>>,
    templates: Vec<Mutex<HashMap<u64, TemplateEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    overrides: AtomicU64,
    corrections: AtomicU64,
    observations: AtomicU64,
    rejected: AtomicU64,
}

/// Poison-recovering lock: a panicked holder cannot have left the maps
/// structurally inconsistent (every critical section is a few field
/// writes), so the data stays usable.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl Default for FeedbackStore {
    fn default() -> FeedbackStore {
        FeedbackStore::new(FeedbackConfig::default())
    }
}

impl FeedbackStore {
    /// An empty store with the given knobs.
    pub fn new(cfg: FeedbackConfig) -> FeedbackStore {
        assert!(cfg.max_correction > 1.0, "max_correction must exceed 1");
        FeedbackStore {
            cfg,
            exact: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            templates: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            overrides: AtomicU64::new(0),
            corrections: AtomicU64::new(0),
            observations: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> FeedbackConfig {
        self.cfg
    }

    /// Records one executed observation: the sub-plan's true cardinality
    /// `truth`, and the estimate `seen_est` the planner actually used for
    /// it. Returns `false` when the truth was unusable and nothing was
    /// recorded.
    ///
    /// The exact entry always takes the *latest* truth (last write wins),
    /// which is what makes the cache recover from data drift: the first
    /// post-shift execution refreshes the entry. A correction sample is
    /// added only on the *first* observation of an exact sub-plan —
    /// later re-observations would feed the template ratios of estimates
    /// this store itself already corrected.
    pub fn observe(&self, q: &JoinQuery, seen_est: f64, truth: f64) -> bool {
        if !truth.is_finite() || truth < 0.0 {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        self.observations.fetch_add(1, Ordering::Relaxed);
        let ch = q.canonical_hash();
        let newly = {
            let mut map = lock(&self.exact[ch as usize % SHARDS]);
            match map.entry(ch) {
                Entry::Occupied(mut e) => {
                    let e = e.get_mut();
                    e.rows = truth;
                    e.count += 1;
                    false
                }
                Entry::Vacant(v) => {
                    v.insert(ExactEntry {
                        rows: truth,
                        count: 1,
                    });
                    true
                }
            }
        };
        if newly {
            if seen_est.is_finite() && seen_est > 0.0 {
                let ratio = truth.max(1.0) / seen_est.max(1.0);
                let max_log = self.cfg.max_correction.ln();
                let log_r = ratio.ln().clamp(-max_log, max_log);
                let th = q.template_hash();
                let mut map = lock(&self.templates[th as usize % SHARDS]);
                let t = map.entry(th).or_default();
                t.sum_log_ratio += log_r;
                t.count += 1;
            } else {
                // A poisoned estimate (NaN/±inf/≤0) still refreshed the
                // exact entry but is useless as a correction sample.
                self.rejected.fetch_add(1, Ordering::Relaxed);
            }
        }
        true
    }

    /// Records every sub-plan of one planned-and-executed query. The
    /// three slices align index-for-index (`connected_subsets` order, as
    /// produced by the harness). Returns how many observations were
    /// recorded.
    pub fn observe_subplans(&self, subs: &[SubPlanQuery], ests: &[f64], truths: &[f64]) -> u64 {
        debug_assert_eq!(subs.len(), ests.len());
        debug_assert_eq!(subs.len(), truths.len());
        let mut recorded = 0;
        for ((sub, &e), &t) in subs.iter().zip(ests).zip(truths) {
            recorded += u64::from(self.observe(&sub.query, e, t));
        }
        recorded
    }

    /// Resolves one estimate through the cache: exact hit → the observed
    /// truth; warm sibling template → `inner` times the clamped
    /// geometric-mean correction; otherwise `inner` unchanged. Total over
    /// every `f64` bit pattern — a non-finite `inner` is passed through
    /// untouched (the harness's sanitizer owns that failure mode).
    pub fn apply(&self, q: &JoinQuery, inner: f64) -> f64 {
        let ch = q.canonical_hash();
        {
            let map = lock(&self.exact[ch as usize % SHARDS]);
            if let Some(e) = map.get(&ch) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.overrides.fetch_add(1, Ordering::Relaxed);
                return e.rows;
            }
        }
        if inner.is_finite() && inner >= 0.0 {
            let th = q.template_hash();
            let hit = {
                let map = lock(&self.templates[th as usize % SHARDS]);
                map.get(&th).copied().filter(|t| t.count >= self.cfg.warmup)
            };
            if let Some(t) = hit {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.corrections.fetch_add(1, Ordering::Relaxed);
                let factor = (t.sum_log_ratio / t.count as f64)
                    .exp()
                    .clamp(1.0 / self.cfg.max_correction, self.cfg.max_correction);
                // factor is finite and positive; saturate the product so
                // a huge-but-finite inner can never correct to +inf.
                return (inner * factor).min(f64::MAX);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        inner
    }

    /// Counter snapshot (cumulative). Fold deltas, not absolutes, into
    /// metric families when the store is shared across runs.
    pub fn stats(&self) -> FeedbackStats {
        FeedbackStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            overrides: self.overrides.load(Ordering::Relaxed),
            corrections: self.corrections.load(Ordering::Relaxed),
            observations: self.observations.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            exact_entries: self.exact.iter().map(|s| lock(s).len() as u64).sum(),
            template_entries: self.templates.iter().map(|s| lock(s).len() as u64).sum(),
        }
    }

    /// True when no observation has ever been recorded.
    pub fn is_empty(&self) -> bool {
        self.exact.iter().all(|s| lock(s).is_empty())
    }
}

/// The feedback wrapper estimator: any inner [`CardEst`] plus a shared
/// [`FeedbackStore`]. With feedback `enabled == false` (or a store that
/// has seen zero observations) every method is a bit-identical
/// passthrough to the inner estimator — pinned by differential tests.
pub struct FeedbackEst {
    inner: Box<dyn CardEst>,
    store: Arc<FeedbackStore>,
    enabled: bool,
}

impl FeedbackEst {
    /// Wraps `inner` with the shared store.
    pub fn new(inner: Box<dyn CardEst>, store: Arc<FeedbackStore>, enabled: bool) -> FeedbackEst {
        FeedbackEst {
            inner,
            store,
            enabled,
        }
    }

    /// The shared store (for observation recording and stats).
    pub fn store(&self) -> &Arc<FeedbackStore> {
        &self.store
    }

    /// Whether feedback resolution is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The wrapped estimator.
    pub fn inner(&self) -> &dyn CardEst {
        self.inner.as_ref()
    }
}

impl CardEst for FeedbackEst {
    fn name(&self) -> &'static str {
        "Feedback"
    }

    fn estimate(&self, db: &Database, sub: &SubPlanQuery) -> f64 {
        let e = self.inner.estimate(db, sub);
        if !self.enabled {
            return e;
        }
        self.store.apply(&sub.query, e)
    }

    fn estimate_batch(&self, db: &Database, subs: &[SubPlanQuery]) -> Vec<f64> {
        let mut out = self.inner.estimate_batch(db, subs);
        if self.enabled {
            for (v, sub) in out.iter_mut().zip(subs) {
                *v = self.store.apply(&sub.query, *v);
            }
        }
        out
    }

    fn batch_leverage(&self) -> bool {
        self.inner.batch_leverage()
    }

    fn model_size_bytes(&self) -> usize {
        self.inner.model_size_bytes()
    }

    fn is_oracle(&self) -> bool {
        self.inner.is_oracle()
    }

    fn supports_update(&self) -> bool {
        self.inner.supports_update()
    }

    fn apply_inserts(&mut self, db: &Database, delta: &[Table]) {
        self.inner.apply_inserts(db, delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardbench_query::{Predicate, Region};

    fn q(lit: i64) -> JoinQuery {
        JoinQuery::single("t", vec![Predicate::new(0, "x", Region::eq(lit))])
    }

    #[test]
    fn exact_hit_overrides_and_last_write_wins() {
        let s = FeedbackStore::default();
        assert!(s.is_empty());
        assert_eq!(s.apply(&q(1), 500.0), 500.0);
        assert!(s.observe(&q(1), 500.0, 42.0));
        assert_eq!(s.apply(&q(1), 500.0), 42.0);
        // Drift: a later observation of the same sub-plan replaces it.
        assert!(s.observe(&q(1), 42.0, 77.0));
        assert_eq!(s.apply(&q(1), 500.0), 77.0);
        let st = s.stats();
        assert_eq!(st.overrides, 2);
        assert_eq!(st.observations, 2);
        assert_eq!(st.exact_entries, 1);
    }

    #[test]
    fn sibling_correction_after_warmup() {
        let cfg = FeedbackConfig {
            warmup: 2,
            max_correction: 1e4,
        };
        let s = FeedbackStore::new(cfg);
        // Two siblings, each observed 10x underestimated.
        s.observe(&q(1), 10.0, 100.0);
        s.observe(&q(2), 20.0, 200.0);
        // A third, unseen sibling: corrected by the geometric mean (10x).
        let corrected = s.apply(&q(3), 50.0);
        assert!((corrected - 500.0).abs() < 1e-6, "corrected {corrected}");
        let st = s.stats();
        assert_eq!(st.corrections, 1);
        assert_eq!(st.template_entries, 1);
        // Below warmup nothing happens.
        let s2 = FeedbackStore::new(FeedbackConfig { warmup: 3, ..cfg });
        s2.observe(&q(1), 10.0, 100.0);
        s2.observe(&q(2), 20.0, 200.0);
        assert_eq!(s2.apply(&q(3), 50.0), 50.0);
        assert_eq!(s2.stats().misses, 1);
    }

    #[test]
    fn corrections_are_clamped_and_total() {
        let s = FeedbackStore::new(FeedbackConfig {
            warmup: 1,
            max_correction: 100.0,
        });
        // A 10^6x underestimate: the sample clamps to ln(100).
        s.observe(&q(1), 1.0, 1e6);
        let corrected = s.apply(&q(2), 3.0);
        assert!((corrected - 300.0).abs() < 1e-6, "corrected {corrected}");
        // Poisoned truths are rejected outright.
        assert!(!s.observe(&q(3), 5.0, f64::NAN));
        assert!(!s.observe(&q(3), 5.0, f64::INFINITY));
        assert!(!s.observe(&q(3), 5.0, -1.0));
        // Poisoned estimates record the truth but no correction sample.
        assert!(s.observe(&q(4), f64::NAN, 9.0));
        assert_eq!(s.apply(&q(4), 123.0), 9.0);
        // Non-finite inner estimates pass through a template miss
        // untouched rather than turning into NaN corrections.
        assert!(s.apply(&q(5), f64::INFINITY).is_infinite());
        // A huge finite inner saturates instead of overflowing to +inf.
        let sat = s.apply(&q(6), f64::MAX);
        assert!(sat.is_finite());
        let st = s.stats();
        assert_eq!(st.rejected, 4);
    }

    #[test]
    fn wrapper_passthrough_when_disabled_or_empty() {
        struct Fixed;
        impl CardEst for Fixed {
            fn name(&self) -> &'static str {
                "Fixed"
            }
            fn estimate(&self, _: &Database, _: &SubPlanQuery) -> f64 {
                321.5
            }
        }
        let store = Arc::new(FeedbackStore::default());
        let db = Database::new(cardbench_storage::Catalog::new());
        let sub = SubPlanQuery {
            mask: cardbench_query::TableMask::full(1),
            query: q(1),
        };
        let on = FeedbackEst::new(Box::new(Fixed), Arc::clone(&store), true);
        // Empty store: passthrough even when enabled.
        assert_eq!(on.estimate(&db, &sub).to_bits(), 321.5f64.to_bits());
        store.observe(&q(1), 321.5, 7.0);
        assert_eq!(on.estimate(&db, &sub), 7.0);
        // Disabled wrapper ignores a warm store.
        let off = FeedbackEst::new(Box::new(Fixed), Arc::clone(&store), false);
        assert_eq!(off.estimate(&db, &sub).to_bits(), 321.5f64.to_bits());
        assert_eq!(on.name(), "Feedback");
        assert!(!on.is_oracle() && !on.supports_update() && !on.batch_leverage());
    }
}
